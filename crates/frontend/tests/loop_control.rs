//! `exit` / `cycle` loop-control statements: lowering shape, execution
//! semantics, and their interaction with the range-check optimizer
//! (conditionally exited loops produce multi-exit CFGs; checks after a
//! conditional `exit`/`cycle` are not anticipatable at the loop entry and
//! must not be hoisted).

use nascent_frontend::compile;
use nascent_interp::{run, Limits, Value};
use nascent_ir::validate::assert_valid;

fn run_src(src: &str) -> nascent_interp::RunResult {
    let p = compile(src).unwrap();
    assert_valid(&p);
    run(&p, &Limits::default()).unwrap()
}

#[test]
fn exit_leaves_the_loop_early() {
    let r = run_src(
        "program p
 integer i, s
 s = 0
 do i = 1, 100
  if (i == 5) then
   exit
  endif
  s = s + i
 enddo
 print s
 print i
end
",
    );
    assert_eq!(r.output, vec![Value::Int(10), Value::Int(5)]);
}

#[test]
fn cycle_skips_to_the_next_iteration() {
    let r = run_src(
        "program p
 integer i, s
 s = 0
 do i = 1, 10
  if (mod(i, 2) == 0) then
   cycle
  endif
  s = s + i
 enddo
 print s
end
",
    );
    assert_eq!(r.output, vec![Value::Int(25)]); // 1+3+5+7+9
}

#[test]
fn cycle_in_do_loop_still_increments() {
    // a cycle that skipped the increment would loop forever
    let r = run_src(
        "program p
 integer i, c
 c = 0
 do i = 1, 6
  cycle
 enddo
 print i
end
",
    );
    assert_eq!(r.output, vec![Value::Int(7)]);
}

#[test]
fn exit_from_while_loop() {
    let r = run_src(
        "program p
 integer i
 i = 0
 while (1 == 1)
  i = i + 1
  if (i >= 8) then
   exit
  endif
 endwhile
 print i
end
",
    );
    assert_eq!(r.output, vec![Value::Int(8)]);
}

#[test]
fn cycle_in_while_retests_condition() {
    let r = run_src(
        "program p
 integer i, s
 i = 0
 s = 0
 while (i < 10)
  i = i + 1
  if (i > 5) then
   cycle
  endif
  s = s + i
 endwhile
 print s
end
",
    );
    assert_eq!(r.output, vec![Value::Int(15)]); // 1..5
}

#[test]
fn nested_loops_exit_innermost_only() {
    let r = run_src(
        "program p
 integer i, j, s
 s = 0
 do i = 1, 3
  do j = 1, 10
   if (j == 2) then
    exit
   endif
   s = s + 1
  enddo
 enddo
 print s
end
",
    );
    assert_eq!(r.output, vec![Value::Int(3)]);
}

#[test]
fn exit_outside_loop_is_error() {
    assert!(compile("program p\n exit\nend\n").is_err());
    assert!(compile("program p\n cycle\nend\n").is_err());
}

#[test]
fn optimizer_is_safe_on_early_exit_loops() {
    use nascent_rangecheck::{optimize_program, OptimizeOptions, Scheme};
    // a(i) would trap at i = 11, but the loop exits at i = 6: hoisting the
    // post-exit access's check naively would introduce a bogus trap
    let src = "program p
 integer a(1:10)
 integer i, s
 s = 0
 do i = 1, 20
  if (i > 5) then
   exit
  endif
  a(i) = i
  s = s + a(i)
 enddo
 print s
end
";
    let naive = run_src(src);
    assert!(naive.trap.is_none());
    for scheme in Scheme::EACH {
        let mut p = compile(src).unwrap();
        optimize_program(&mut p, &OptimizeOptions::scheme(scheme));
        assert_valid(&p);
        let opt = run(&p, &Limits::default()).unwrap();
        assert!(opt.trap.is_none(), "{scheme:?} introduced a trap");
        assert_eq!(opt.output, naive.output, "{scheme:?}");
    }
}

#[test]
fn optimizer_preserves_trap_in_pre_exit_region() {
    use nascent_rangecheck::{optimize_program, OptimizeOptions, Scheme};
    let src = "program p
 integer a(1:4)
 integer i
 do i = 1, 20
  a(i) = i
  if (i > 50) then
   exit
  endif
 enddo
end
";
    let naive = run_src(src);
    let nt = naive.trap.expect("naive traps at i = 5");
    for scheme in Scheme::EACH {
        let mut p = compile(src).unwrap();
        optimize_program(&mut p, &OptimizeOptions::scheme(scheme));
        let opt = run(&p, &Limits::default()).unwrap();
        let ot = opt
            .trap
            .unwrap_or_else(|| panic!("{scheme:?} lost the trap"));
        assert!(ot.at_progress <= nt.at_progress, "{scheme:?} delayed");
    }
}
