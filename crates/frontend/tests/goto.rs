//! `goto`/`label`: arbitrary control flow, including the irreducible
//! shapes that motivated the paper's data-flow formulation over
//! verification-based approaches ("restricted to programs written in a
//! structured manner (without goto statements)", §5).

use nascent_frontend::compile;
use nascent_interp::{run, Limits, Value};
use nascent_ir::validate::assert_valid;
use nascent_rangecheck::{optimize_program, OptimizeOptions, Scheme};

fn run_src(src: &str) -> nascent_interp::RunResult {
    let p = compile(src).unwrap();
    assert_valid(&p);
    run(&p, &Limits::default()).unwrap()
}

#[test]
fn forward_goto_skips_statements() {
    let r = run_src(
        "program p
 integer x
 x = 1
 goto skip
 x = 99
 label skip
 print x
end
",
    );
    assert_eq!(r.output, vec![Value::Int(1)]);
}

#[test]
fn backward_goto_builds_a_loop() {
    let r = run_src(
        "program p
 integer i, s
 i = 0
 s = 0
 label top
 i = i + 1
 s = s + i
 if (i < 5) then
  goto top
 endif
 print s
end
",
    );
    assert_eq!(r.output, vec![Value::Int(15)]);
}

#[test]
fn goto_out_of_a_loop() {
    let r = run_src(
        "program p
 integer i
 do i = 1, 100
  if (i == 7) then
   goto out
  endif
 enddo
 label out
 print i
end
",
    );
    assert_eq!(r.output, vec![Value::Int(7)]);
}

#[test]
fn undefined_label_is_error() {
    assert!(compile("program p\n goto nowhere\nend\n").is_err());
}

#[test]
fn duplicate_label_is_error() {
    assert!(compile("program p\n label a\n label a\nend\n").is_err());
}

#[test]
fn irreducible_flow_executes_correctly() {
    // two-entry region: jump into the middle from outside
    let r = run_src(
        "program p
 integer x, c
 c = 1
 x = 0
 if (c == 1) then
  goto mid
 endif
 label top
 x = x + 100
 label mid
 x = x + 1
 if (x < 3) then
  goto top
 endif
 print x
end
",
    );
    // path: mid (x=1), x<3 -> top (x=101), mid (x=102), done
    assert_eq!(r.output, vec![Value::Int(102)]);
}

#[test]
fn optimizer_is_sound_on_goto_programs() {
    let sources = [
        // backward-goto loop with array traffic: natural loop via goto
        "program p
 integer a(1:50)
 integer i
 i = 1
 label top
 a(i) = i
 i = i + 1
 if (i <= 50) then
  goto top
 endif
 print a(50)
end
",
        // irreducible region with in-range accesses
        "program p
 integer a(1:10)
 integer x, c
 c = 0
 x = 1
 if (c == 1) then
  goto mid
 endif
 label top
 a(x) = x
 label mid
 x = x + 1
 if (x < 9) then
  goto top
 endif
 print a(5) + x
end
",
        // goto past a trapping access (never executed)
        "program p
 integer a(1:5)
 integer i
 i = 99
 goto fine
 a(i) = 1
 label fine
 print 3
end
",
    ];
    for src in sources {
        let naive = run_src(src);
        for scheme in Scheme::EACH {
            let mut p = compile(src).unwrap();
            optimize_program(&mut p, &OptimizeOptions::scheme(scheme));
            assert_valid(&p);
            let opt = run(&p, &Limits::default()).unwrap();
            assert_eq!(
                opt.trap.is_some(),
                naive.trap.is_some(),
                "{scheme:?}\n{src}"
            );
            if naive.trap.is_none() {
                assert_eq!(opt.output, naive.output, "{scheme:?}\n{src}");
            }
            assert!(
                opt.dynamic_checks <= naive.dynamic_checks,
                "{scheme:?} increased checks\n{src}"
            );
        }
    }
}

#[test]
fn goto_loop_is_hoistable_when_natural() {
    // the backward-goto loop above is a natural loop; LLS should hoist
    let src = "program p
 integer a(1:50)
 integer i
 i = 1
 label top
 a(i) = i
 i = i + 1
 if (i <= 50) then
  goto top
 endif
 print a(50)
end
";
    let naive = run_src(src);
    let mut p = compile(src).unwrap();
    optimize_program(&mut p, &OptimizeOptions::scheme(Scheme::Lls));
    let opt = run(&p, &Limits::default()).unwrap();
    assert_eq!(opt.output, naive.output);
    // header here is the label block itself; the test-at-bottom shape
    // means the in-loop bound is available from the branch, and the whole
    // loop body dominates the latch. Whether hoisting fires depends on
    // IV recognition over this shape; at minimum nothing regresses.
    assert!(opt.dynamic_checks <= naive.dynamic_checks);
}
