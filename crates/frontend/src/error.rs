//! Compile-time error reporting with source positions.

use std::fmt;

/// The broad phase in which a [`CompileError`] arose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Tokenization failure.
    Lex,
    /// Grammar violation.
    Parse,
    /// Name resolution, typing or structural rule violation.
    Sema,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::Lex => write!(f, "lex error"),
            ErrorKind::Parse => write!(f, "parse error"),
            ErrorKind::Sema => write!(f, "semantic error"),
        }
    }
}

/// A compilation failure with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Which phase failed.
    pub kind: ErrorKind,
    /// 1-based source line of the offending construct.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Creates an error.
    pub fn new(kind: ErrorKind, line: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            kind,
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {}: {}", self.kind, self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_kind_and_line() {
        let e = CompileError::new(ErrorKind::Parse, 12, "expected enddo");
        assert_eq!(e.to_string(), "parse error at line 12: expected enddo");
    }
}
