//! Recursive-descent parser for MiniF.

use crate::ast::*;
use crate::error::{CompileError, ErrorKind};
use crate::lexer::{Tok, Token};

/// Parses a token stream into a [`SourceFile`].
///
/// # Errors
///
/// Returns a [`CompileError`] on the first grammar violation.
pub fn parse(tokens: &[Token]) -> Result<SourceFile, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut units = Vec::new();
    p.skip_newlines();
    while !p.at_end() {
        units.push(p.unit()?);
        p.skip_newlines();
    }
    if units.is_empty() {
        return Err(CompileError::new(ErrorKind::Parse, 1, "empty source file"));
    }
    Ok(SourceFile { units })
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(ErrorKind::Parse, self.line(), msg)
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), CompileError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_newline(&mut self) -> Result<(), CompileError> {
        self.expect(&Tok::Newline, "end of line")
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Some(Tok::Newline)) {
            self.pos += 1;
        }
    }

    /// Consumes the next identifier that is not a keyword.
    fn ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.peek() {
            Some(Tok::Ident(name)) if !is_keyword(name) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// True and consumed if the next token is the given keyword.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(name)) = self.peek() {
            if name == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), CompileError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(name)) if name == kw)
    }

    fn unit(&mut self) -> Result<Unit, CompileError> {
        let line = self.line();
        let (kind, name, params) = if self.eat_kw("program") {
            (UnitKind::Program, self.ident("program name")?, Vec::new())
        } else if self.eat_kw("subroutine") {
            let name = self.ident("subroutine name")?;
            let mut params = Vec::new();
            self.expect(&Tok::LParen, "`(`")?;
            if !matches!(self.peek(), Some(Tok::RParen)) {
                loop {
                    params.push(self.ident("parameter name")?);
                    if !matches!(self.peek(), Some(Tok::Comma)) {
                        break;
                    }
                    self.pos += 1;
                }
            }
            self.expect(&Tok::RParen, "`)`")?;
            (UnitKind::Subroutine, name, params)
        } else {
            return Err(self.err("expected `program` or `subroutine`"));
        };
        self.expect_newline()?;
        self.skip_newlines();
        let mut decls = Vec::new();
        let mut consts = Vec::new();
        while self.at_kw("integer") || self.at_kw("real") || self.at_kw("parameter") {
            if self.eat_kw("parameter") {
                let cline = self.line();
                let name = self.ident("constant name")?;
                self.expect(&Tok::Assign, "`=`")?;
                let negative = matches!(self.peek(), Some(Tok::Minus));
                if negative {
                    self.pos += 1;
                }
                let v = match self.peek() {
                    Some(Tok::Int(v)) => {
                        let v = *v;
                        self.pos += 1;
                        v
                    }
                    other => {
                        return Err(self.err(format!(
                            "parameter value must be an integer literal, found {other:?}"
                        )))
                    }
                };
                self.expect_newline()?;
                consts.push((name, if negative { -v } else { v }, cline));
            } else {
                decls.push(self.decl()?);
            }
            self.skip_newlines();
        }
        let body = self.stmts(&["end"])?;
        self.expect_kw("end")?;
        self.expect_newline()?;
        Ok(Unit {
            kind,
            name,
            params,
            consts,
            decls,
            body,
            line,
        })
    }

    fn decl(&mut self) -> Result<Decl, CompileError> {
        let line = self.line();
        let ty = if self.eat_kw("integer") {
            TypeName::Integer
        } else {
            self.expect_kw("real")?;
            TypeName::Real
        };
        let mut items = Vec::new();
        loop {
            let name = self.ident("declared name")?;
            if matches!(self.peek(), Some(Tok::LParen)) {
                self.pos += 1;
                let mut dims = Vec::new();
                loop {
                    let first = self.expr()?;
                    if matches!(self.peek(), Some(Tok::Colon)) {
                        self.pos += 1;
                        let hi = self.expr()?;
                        dims.push((first, hi));
                    } else {
                        dims.push((Expr::Int(1), first));
                    }
                    if !matches!(self.peek(), Some(Tok::Comma)) {
                        break;
                    }
                    self.pos += 1;
                }
                self.expect(&Tok::RParen, "`)`")?;
                items.push(DeclItem::Array(name, dims));
            } else {
                items.push(DeclItem::Scalar(name));
            }
            if !matches!(self.peek(), Some(Tok::Comma)) {
                break;
            }
            self.pos += 1;
        }
        self.expect_newline()?;
        Ok(Decl { ty, items, line })
    }

    /// Parses statements until one of the stopper keywords (not consumed).
    fn stmts(&mut self, stoppers: &[&str]) -> Result<Vec<Stmt>, CompileError> {
        let mut out = Vec::new();
        loop {
            self.skip_newlines();
            if self.at_end() {
                return Err(self.err(format!("unexpected end of file, expected {stoppers:?}")));
            }
            if stoppers.iter().any(|s| self.at_kw(s)) {
                return Ok(out);
            }
            out.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.eat_kw("do") {
            let var = self.ident("loop variable")?;
            self.expect(&Tok::Assign, "`=`")?;
            let lo = self.expr()?;
            self.expect(&Tok::Comma, "`,`")?;
            let hi = self.expr()?;
            let step = if matches!(self.peek(), Some(Tok::Comma)) {
                self.pos += 1;
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_newline()?;
            let body = self.stmts(&["enddo"])?;
            self.expect_kw("enddo")?;
            self.expect_newline()?;
            return Ok(Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                line,
            });
        }
        if self.eat_kw("while") {
            self.expect(&Tok::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen, "`)`")?;
            self.expect_newline()?;
            let body = self.stmts(&["endwhile"])?;
            self.expect_kw("endwhile")?;
            self.expect_newline()?;
            return Ok(Stmt::While { cond, body, line });
        }
        if self.eat_kw("if") {
            self.expect(&Tok::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen, "`)`")?;
            self.expect_kw("then")?;
            self.expect_newline()?;
            let then_body = self.stmts(&["else", "endif"])?;
            let else_body = if self.eat_kw("else") {
                self.expect_newline()?;
                self.stmts(&["endif"])?
            } else {
                Vec::new()
            };
            self.expect_kw("endif")?;
            self.expect_newline()?;
            return Ok(Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            });
        }
        if self.eat_kw("call") {
            let name = self.ident("subroutine name")?;
            self.expect(&Tok::LParen, "`(`")?;
            let mut args = Vec::new();
            if !matches!(self.peek(), Some(Tok::RParen)) {
                loop {
                    args.push(self.expr()?);
                    if !matches!(self.peek(), Some(Tok::Comma)) {
                        break;
                    }
                    self.pos += 1;
                }
            }
            self.expect(&Tok::RParen, "`)`")?;
            self.expect_newline()?;
            return Ok(Stmt::Call { name, args, line });
        }
        if self.eat_kw("label") {
            let name = self.ident("label name")?;
            self.expect_newline()?;
            return Ok(Stmt::Label { name, line });
        }
        if self.eat_kw("goto") {
            let name = self.ident("label name")?;
            self.expect_newline()?;
            return Ok(Stmt::Goto { name, line });
        }
        if self.eat_kw("exit") {
            self.expect_newline()?;
            return Ok(Stmt::Exit { line });
        }
        if self.eat_kw("cycle") {
            self.expect_newline()?;
            return Ok(Stmt::Cycle { line });
        }
        if self.eat_kw("print") {
            let value = self.expr()?;
            self.expect_newline()?;
            return Ok(Stmt::Print { value, line });
        }
        // assignment
        let name = self.ident("statement")?;
        let target = if matches!(self.peek(), Some(Tok::LParen)) {
            self.pos += 1;
            let mut subs = Vec::new();
            loop {
                subs.push(self.expr()?);
                if !matches!(self.peek(), Some(Tok::Comma)) {
                    break;
                }
                self.pos += 1;
            }
            self.expect(&Tok::RParen, "`)`")?;
            LValue::Elem(name, subs)
        } else {
            LValue::Var(name)
        };
        self.expect(&Tok::Assign, "`=`")?;
        let value = self.expr()?;
        self.expect_newline()?;
        Ok(Stmt::Assign {
            target,
            value,
            line,
        })
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            let r = self.and_expr()?;
            e = Expr::bin(BinOp::Or, e, r);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.not_expr()?;
        while self.eat_kw("and") {
            let r = self.not_expr()?;
            e = Expr::bin(BinOp::And, e, r);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr, CompileError> {
        if self.eat_kw("not") {
            let e = self.not_expr()?;
            return Ok(Expr::Un(UnOp::Not, Box::new(e)));
        }
        self.rel_expr()
    }

    fn rel_expr(&mut self) -> Result<Expr, CompileError> {
        let e = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            Some(Tok::EqEq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            _ => return Ok(e),
        };
        self.pos += 1;
        let r = self.add_expr()?;
        Ok(Expr::bin(op, e, r))
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(e),
            };
            self.pos += 1;
            let r = self.mul_expr()?;
            e = Expr::bin(op, e, r);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => return Ok(e),
            };
            self.pos += 1;
            let r = self.unary_expr()?;
            e = Expr::bin(op, e, r);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        if matches!(self.peek(), Some(Tok::Minus)) {
            self.pos += 1;
            let e = self.unary_expr()?;
            return Ok(Expr::Un(UnOp::Neg, Box::new(e)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Int(v))
            }
            Some(Tok::Real(v)) => {
                self.pos += 1;
                Ok(Expr::Real(v))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                // intrinsics parse like calls; plain keywords are errors here
                let intrinsic = matches!(name.as_str(), "min" | "max" | "mod");
                if is_keyword(&name) && !intrinsic {
                    return Err(self.err(format!("unexpected keyword `{name}` in expression")));
                }
                self.pos += 1;
                if matches!(self.peek(), Some(Tok::LParen)) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Tok::RParen)) {
                        loop {
                            args.push(self.expr()?);
                            if !matches!(self.peek(), Some(Tok::Comma)) {
                                break;
                            }
                            self.pos += 1;
                        }
                    }
                    self.expect(&Tok::RParen, "`)`")?;
                    Ok(Expr::Elem(name, args))
                } else if intrinsic {
                    Err(self.err(format!("intrinsic `{name}` requires arguments")))
                } else {
                    Ok(Expr::Name(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Reserved words that cannot be used as identifiers.
pub fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "program"
            | "subroutine"
            | "end"
            | "integer"
            | "real"
            | "do"
            | "enddo"
            | "while"
            | "endwhile"
            | "if"
            | "then"
            | "else"
            | "endif"
            | "call"
            | "print"
            | "exit"
            | "cycle"
            | "label"
            | "goto"
            | "parameter"
            | "and"
            | "or"
            | "not"
            | "min"
            | "max"
            | "mod"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> SourceFile {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_program_with_decls() {
        let f = parse_src("program p\n integer i, j\n real a(1:10), b(5)\n i = 1\nend\n");
        assert_eq!(f.units.len(), 1);
        let u = &f.units[0];
        assert_eq!(u.kind, UnitKind::Program);
        assert_eq!(u.decls.len(), 2);
        match &u.decls[1].items[1] {
            DeclItem::Array(name, dims) => {
                assert_eq!(name, "b");
                assert_eq!(dims[0], (Expr::Int(1), Expr::Int(5)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_do_loop_with_step() {
        let f = parse_src("program p\n integer i\n do i = 1, 10, 2\n i = i\n enddo\nend\n");
        match &f.units[0].body[0] {
            Stmt::Do {
                var, step, body, ..
            } => {
                assert_eq!(var, "i");
                assert!(step.is_some());
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_and_while() {
        let f = parse_src(
            "program p\n integer i\n while (i < 10)\n if (i == 3) then\n i = 4\n else\n i = i + 1\n endif\n endwhile\nend\n",
        );
        match &f.units[0].body[0] {
            Stmt::While { body, .. } => match &body[0] {
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    assert_eq!(then_body.len(), 1);
                    assert_eq!(else_body.len(), 1);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_subroutine_and_call() {
        let f = parse_src(
            "subroutine s(x, a)\n integer x\n integer a(1:10)\n a(x) = 0\nend\nprogram p\n integer a(1:10)\n call s(3, a)\nend\n",
        );
        assert_eq!(f.units.len(), 2);
        assert_eq!(f.units[0].params, vec!["x", "a"]);
        match &f.units[1].body[0] {
            Stmt::Call { name, args, .. } => {
                assert_eq!(name, "s");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let f = parse_src("program p\n integer x\n x = 1 + 2 * 3\nend\n");
        match &f.units[0].body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Bin(BinOp::Add, _, r) => {
                    assert!(matches!(**r, Expr::Bin(BinOp::Mul, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn min_requires_args() {
        let r = parse(&lex("program p\n integer x\n x = min\nend\n").unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn missing_enddo_is_error() {
        let r = parse(&lex("program p\n integer i\n do i = 1, 3\n i = i\nend\n").unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn keyword_as_identifier_is_error() {
        let r = parse(&lex("program do\nend\n").unwrap());
        assert!(r.is_err());
    }
}
