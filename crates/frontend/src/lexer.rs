//! Tokenizer for MiniF.
//!
//! `!` starts a comment running to end of line. Newlines are significant:
//! they terminate statements (like Fortran's line orientation), so the
//! lexer emits [`Tok::Newline`] tokens (collapsing runs).

use crate::error::{CompileError, ErrorKind};

/// A token kind plus any payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are resolved by the parser;
    /// identifiers are case-insensitive and stored lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `/=` (Fortran-90 spelling; `!` starts a comment)
    Ne,
    /// End of line (statement separator).
    Newline,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Tokenizes MiniF source.
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed numbers or unexpected
/// characters.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let push = |out: &mut Vec<Token>, tok: Tok, line: u32| out.push(Token { tok, line });
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                if !matches!(
                    out.last(),
                    None | Some(Token {
                        tok: Tok::Newline,
                        ..
                    })
                ) {
                    push(&mut out, Tok::Newline, line);
                }
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '!' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push(&mut out, Tok::LParen, line);
                i += 1;
            }
            ')' => {
                push(&mut out, Tok::RParen, line);
                i += 1;
            }
            ',' => {
                push(&mut out, Tok::Comma, line);
                i += 1;
            }
            ':' => {
                push(&mut out, Tok::Colon, line);
                i += 1;
            }
            '+' => {
                push(&mut out, Tok::Plus, line);
                i += 1;
            }
            '-' => {
                push(&mut out, Tok::Minus, line);
                i += 1;
            }
            '*' => {
                push(&mut out, Tok::Star, line);
                i += 1;
            }
            '/' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(&mut out, Tok::Ne, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Slash, line);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(&mut out, Tok::Le, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Lt, line);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(&mut out, Tok::Ge, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Gt, line);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(&mut out, Tok::EqEq, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Assign, line);
                    i += 1;
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let is_real = i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit();
                if is_real {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let v: f64 = text.parse().map_err(|_| {
                        CompileError::new(ErrorKind::Lex, line, format!("bad real literal {text}"))
                    })?;
                    push(&mut out, Tok::Real(v), line);
                } else {
                    let text = &src[start..i];
                    let v: i64 = text.parse().map_err(|_| {
                        CompileError::new(
                            ErrorKind::Lex,
                            line,
                            format!("integer literal {text} out of range"),
                        )
                    })?;
                    push(&mut out, Tok::Int(v), line);
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                push(
                    &mut out,
                    Tok::Ident(src[start..i].to_ascii_lowercase()),
                    line,
                );
            }
            _ => {
                // `!=` is handled here because bare `!` is a comment.
                return Err(CompileError::new(
                    ErrorKind::Lex,
                    line,
                    format!("unexpected character {c:?}"),
                ));
            }
        }
    }
    if !matches!(
        out.last(),
        None | Some(Token {
            tok: Tok::Newline,
            ..
        })
    ) {
        out.push(Token {
            tok: Tok::Newline,
            line,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("a = b + 3"),
            vec![
                Tok::Ident("a".into()),
                Tok::Assign,
                Tok::Ident("b".into()),
                Tok::Plus,
                Tok::Int(3),
                Tok::Newline
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines_collapse() {
        let ts = toks("x = 1 ! set x\n\n\ny = 2");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Newline,
                Tok::Ident("y".into()),
                Tok::Assign,
                Tok::Int(2),
                Tok::Newline
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a <= b >= c < d > e == f"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Ge,
                Tok::Ident("c".into()),
                Tok::Lt,
                Tok::Ident("d".into()),
                Tok::Gt,
                Tok::Ident("e".into()),
                Tok::EqEq,
                Tok::Ident("f".into()),
                Tok::Newline
            ]
        );
    }

    #[test]
    fn real_literals() {
        assert_eq!(
            toks("x = 1.5"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Real(1.5),
                Tok::Newline
            ]
        );
        // `3.` without following digit stays an int + lex error on '.'
        assert!(lex("x = 3.z").is_err());
    }

    #[test]
    fn identifiers_are_case_insensitive() {
        assert_eq!(toks("DO I = 1, N")[1], Tok::Ident("i".into()));
    }

    #[test]
    fn line_numbers_track() {
        let ts = lex("a = 1\nb = 2").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[4].line, 2);
    }

    #[test]
    fn huge_int_is_error() {
        assert!(lex("x = 99999999999999999999999").is_err());
    }
}
