//! Semantic analysis and lowering of the MiniF AST to [`nascent_ir`].
//!
//! Lowering flattens array reads into `Load` statements so every array
//! access is a statement, and (when requested) inserts the naive range
//! checks: one lower-bound and one upper-bound canonical check per
//! subscript per dimension, immediately before the access.
//!
//! Semantic rules enforced here (deviations from full Fortran are noted in
//! `DESIGN.md`):
//!
//! * every name must be declared; parameters are declared like locals;
//! * array bounds in the main program must be compile-time constants;
//!   in subroutines they may also reference scalar parameters;
//! * any variable appearing in an array bound is *bound-frozen*: assigning
//!   to it anywhere in the unit is an error (this keeps the canonical
//!   checks, which mention the bound symbolically, consistent with the
//!   array extents frozen at function entry);
//! * `do` steps must be non-zero integer constants;
//! * the loop variable of an active `do` cannot be assigned;
//! * subscripts and conditions must be integer-typed; `real` values cannot
//!   be assigned to integer targets.

use std::collections::{HashMap, HashSet};

use nascent_ir as ir;
use nascent_ir::{
    Arg, ArrayId, ArrayInfo, Block, BlockId, Check, CheckExpr, Function, Param, Program, Stmt,
    Terminator, Ty, VarId, VarInfo,
};

use crate::ast;
use crate::error::{CompileError, ErrorKind};
use crate::CheckInsertion;

/// Lowers a parsed source file to an IR program.
///
/// # Errors
///
/// Returns a [`CompileError`] for any semantic rule violation.
pub fn lower(file: &ast::SourceFile, checks: CheckInsertion) -> Result<Program, CompileError> {
    // pass 1: unit signatures
    let mut sigs: HashMap<String, (ir::FuncId, Vec<ParamSig>, ast::UnitKind)> = HashMap::new();
    let mut main: Option<ir::FuncId> = None;
    for (i, u) in file.units.iter().enumerate() {
        let id = ir::FuncId(i as u32);
        if sigs.contains_key(&u.name) {
            return Err(err(u.line, format!("duplicate unit name `{}`", u.name)));
        }
        if u.kind == ast::UnitKind::Program {
            if main.is_some() {
                return Err(err(u.line, "multiple `program` units"));
            }
            main = Some(id);
        }
        sigs.insert(u.name.clone(), (id, param_sigs(u)?, u.kind));
    }
    let main = main.ok_or_else(|| err(1, "no `program` unit"))?;
    // pass 2: lower each unit
    let mut functions = Vec::with_capacity(file.units.len());
    for u in &file.units {
        functions.push(Lowerer::new(u, &sigs, checks)?.lower_unit()?);
    }
    Ok(Program { functions, main })
}

fn err(line: u32, msg: impl Into<String>) -> CompileError {
    CompileError::new(ErrorKind::Sema, line, msg)
}

/// Parameter kind signature used for call checking.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ParamSig {
    Scalar(Ty),
    Array { rank: usize, ty: Ty },
}

fn param_sigs(u: &ast::Unit) -> Result<Vec<ParamSig>, CompileError> {
    let mut sigs = Vec::new();
    'params: for p in &u.params {
        for d in &u.decls {
            for item in &d.items {
                match item {
                    ast::DeclItem::Scalar(n) if n == p => {
                        sigs.push(ParamSig::Scalar(conv_ty(d.ty)));
                        continue 'params;
                    }
                    ast::DeclItem::Array(n, dims) if n == p => {
                        sigs.push(ParamSig::Array {
                            rank: dims.len(),
                            ty: conv_ty(d.ty),
                        });
                        continue 'params;
                    }
                    _ => {}
                }
            }
        }
        return Err(err(u.line, format!("parameter `{p}` is not declared")));
    }
    Ok(sigs)
}

fn conv_ty(t: ast::TypeName) -> Ty {
    match t {
        ast::TypeName::Integer => Ty::Int,
        ast::TypeName::Real => Ty::Real,
    }
}

struct Lowerer<'a> {
    unit: &'a ast::Unit,
    sigs: &'a HashMap<String, (ir::FuncId, Vec<ParamSig>, ast::UnitKind)>,
    checks: CheckInsertion,
    func: Function,
    scalars: HashMap<String, VarId>,
    arrays: HashMap<String, ArrayId>,
    frozen: HashSet<VarId>,
    active_loop_vars: Vec<VarId>,
    /// `(cycle target, exit target)` of each enclosing loop, innermost
    /// last. `cycle` jumps to the do-latch (so the increment runs) or the
    /// while-header (so the condition re-tests); `exit` jumps past the
    /// loop.
    loop_ctx: Vec<(BlockId, BlockId)>,
    /// Blocks allocated for `label` names (on first definition or use).
    labels: HashMap<String, BlockId>,
    /// Label names that have been *defined* (a `label` statement seen).
    defined_labels: HashSet<String>,
    /// Named compile-time constants (`parameter` declarations).
    consts: HashMap<String, i64>,
    temp_count: usize,
}

impl<'a> Lowerer<'a> {
    fn new(
        unit: &'a ast::Unit,
        sigs: &'a HashMap<String, (ir::FuncId, Vec<ParamSig>, ast::UnitKind)>,
        checks: CheckInsertion,
    ) -> Result<Lowerer<'a>, CompileError> {
        let mut consts = HashMap::new();
        for (name, v, line) in &unit.consts {
            if consts.insert(name.clone(), *v).is_some() {
                return Err(err(*line, format!("parameter `{name}` defined twice")));
            }
        }
        Ok(Lowerer {
            unit,
            sigs,
            checks,
            func: Function::new(unit.name.clone()),
            scalars: HashMap::new(),
            arrays: HashMap::new(),
            frozen: HashSet::new(),
            active_loop_vars: Vec::new(),
            loop_ctx: Vec::new(),
            labels: HashMap::new(),
            defined_labels: HashSet::new(),
            consts,
            temp_count: 0,
        })
    }

    fn lower_unit(mut self) -> Result<Function, CompileError> {
        self.declare_all()?;
        self.bind_params()?;
        let mut cur = self.func.entry;
        for s in &self.unit.body {
            cur = self.stmt(cur, s)?;
        }
        self.func.block_mut(cur).term = Terminator::Return;
        // every referenced label must have been defined
        for name in self.labels.keys() {
            if !self.defined_labels.contains(name) {
                return Err(err(
                    self.unit.line,
                    format!("goto to undefined label `{name}`"),
                ));
            }
        }
        Ok(self.func)
    }

    /// The block for a label, allocated on first sight.
    fn label_block(&mut self, name: &str) -> BlockId {
        if let Some(&b) = self.labels.get(name) {
            return b;
        }
        let b = self.func.add_block(Block::default());
        self.labels.insert(name.to_string(), b);
        b
    }

    // ---- declarations ------------------------------------------------

    fn declare_all(&mut self) -> Result<(), CompileError> {
        // scalars first so array bounds can reference them
        for d in &self.unit.decls {
            for item in &d.items {
                if let ast::DeclItem::Scalar(name) = item {
                    self.declare_scalar(d.line, name, conv_ty(d.ty))?;
                }
            }
        }
        for d in &self.unit.decls {
            for item in &d.items {
                if let ast::DeclItem::Array(name, dims) = item {
                    self.declare_array(d.line, name, conv_ty(d.ty), dims)?;
                }
            }
        }
        Ok(())
    }

    fn declare_scalar(&mut self, line: u32, name: &str, ty: Ty) -> Result<VarId, CompileError> {
        if self.scalars.contains_key(name)
            || self.arrays.contains_key(name)
            || self.consts.contains_key(name)
        {
            return Err(err(line, format!("`{name}` declared twice")));
        }
        let id = VarId(self.func.vars.len() as u32);
        self.func.vars.push(VarInfo {
            name: name.to_string(),
            ty,
        });
        self.scalars.insert(name.to_string(), id);
        Ok(id)
    }

    fn declare_array(
        &mut self,
        line: u32,
        name: &str,
        ty: Ty,
        dims: &[(ast::Expr, ast::Expr)],
    ) -> Result<(), CompileError> {
        if self.scalars.contains_key(name)
            || self.arrays.contains_key(name)
            || self.consts.contains_key(name)
        {
            return Err(err(line, format!("`{name}` declared twice")));
        }
        if dims.is_empty() {
            return Err(err(line, format!("array `{name}` has no dimensions")));
        }
        let mut ir_dims = Vec::with_capacity(dims.len());
        for (lo, hi) in dims {
            let lo = self.lower_bound_expr(line, name, lo)?;
            let hi = self.lower_bound_expr(line, name, hi)?;
            ir_dims.push((lo, hi));
        }
        let id = ArrayId(self.func.arrays.len() as u32);
        self.func.arrays.push(ArrayInfo {
            name: name.to_string(),
            ty,
            dims: ir_dims,
        });
        self.arrays.insert(name.to_string(), id);
        Ok(())
    }

    /// Lowers an array-bound expression. Bounds are pure scalar-integer
    /// expressions; in the main program they must fold to constants, and
    /// every variable they mention becomes bound-frozen.
    fn lower_bound_expr(
        &mut self,
        line: u32,
        array: &str,
        e: &ast::Expr,
    ) -> Result<ir::Expr, CompileError> {
        let lowered = self.pure_int_expr(line, e)?;
        let folded = lowered.fold();
        if self.unit.kind == ast::UnitKind::Program && folded.as_int().is_none() {
            return Err(err(
                line,
                format!("bounds of `{array}` in the main program must be constant"),
            ));
        }
        for v in folded.vars() {
            self.frozen.insert(v);
        }
        Ok(folded)
    }

    /// Lowers an expression that must not contain array reads (bounds,
    /// steps) and must be integer-typed.
    fn pure_int_expr(&mut self, line: u32, e: &ast::Expr) -> Result<ir::Expr, CompileError> {
        match e {
            ast::Expr::Int(v) => Ok(ir::Expr::int(*v)),
            ast::Expr::Real(_) => Err(err(line, "real value where integer expected")),
            ast::Expr::Name(n) => {
                if let Some(&c) = self.consts.get(n) {
                    return Ok(ir::Expr::int(c));
                }
                let v = self.lookup_scalar(line, n)?;
                if self.func.vars[v.index()].ty != Ty::Int {
                    return Err(err(line, format!("`{n}` must be integer here")));
                }
                Ok(ir::Expr::var(v))
            }
            ast::Expr::Elem(name, args) if matches!(name.as_str(), "min" | "max" | "mod") => {
                let (l, r) = two_args(line, name, args)?;
                let l = self.pure_int_expr(line, l)?;
                let r = self.pure_int_expr(line, r)?;
                Ok(ir::Expr::bin(intrinsic_op(name), l, r))
            }
            ast::Expr::Elem(name, _) => Err(err(
                line,
                format!("array read of `{name}` not allowed in bounds"),
            )),
            ast::Expr::Un(op, inner) => {
                let inner = self.pure_int_expr(line, inner)?;
                Ok(ir::Expr::Unary(conv_unop(*op), Box::new(inner)))
            }
            ast::Expr::Bin(op, l, r) => {
                let l = self.pure_int_expr(line, l)?;
                let r = self.pure_int_expr(line, r)?;
                Ok(ir::Expr::bin(conv_binop(*op), l, r))
            }
        }
    }

    fn bind_params(&mut self) -> Result<(), CompileError> {
        for p in &self.unit.params {
            if let Some(&v) = self.scalars.get(p) {
                self.func.params.push(Param::Scalar(v));
            } else if let Some(&a) = self.arrays.get(p) {
                self.func.params.push(Param::Array(a));
            } else {
                unreachable!("param_sigs already checked declarations");
            }
        }
        Ok(())
    }

    // ---- names -------------------------------------------------------

    fn lookup_scalar(&self, line: u32, name: &str) -> Result<VarId, CompileError> {
        if let Some(&v) = self.scalars.get(name) {
            Ok(v)
        } else if self.arrays.contains_key(name) {
            Err(err(line, format!("array `{name}` used without subscripts")))
        } else if self.consts.contains_key(name) {
            Err(err(
                line,
                format!("`{name}` is a named constant and cannot be used here"),
            ))
        } else {
            Err(err(line, format!("`{name}` is not declared")))
        }
    }

    fn fresh_temp(&mut self, ty: Ty) -> VarId {
        let id = VarId(self.func.vars.len() as u32);
        self.func.vars.push(VarInfo {
            name: format!("%t{}", self.temp_count),
            ty,
        });
        self.temp_count += 1;
        id
    }

    fn new_block(&mut self) -> BlockId {
        self.func.add_block(Block::default())
    }

    // ---- expressions ---------------------------------------------------

    /// Lowers an expression, emitting loads (and their checks) into `cur`.
    /// Returns the IR expression and its type.
    fn expr(
        &mut self,
        cur: BlockId,
        line: u32,
        e: &ast::Expr,
    ) -> Result<(ir::Expr, Ty), CompileError> {
        match e {
            ast::Expr::Int(v) => Ok((ir::Expr::int(*v), Ty::Int)),
            ast::Expr::Real(v) => Ok((ir::Expr::real(*v), Ty::Real)),
            ast::Expr::Name(n) => {
                if let Some(&c) = self.consts.get(n) {
                    return Ok((ir::Expr::int(c), Ty::Int));
                }
                let v = self.lookup_scalar(line, n)?;
                Ok((ir::Expr::var(v), self.func.vars[v.index()].ty))
            }
            ast::Expr::Elem(name, args) if matches!(name.as_str(), "min" | "max" | "mod") => {
                let (l, r) = two_args(line, name, args)?;
                let (l, lt) = self.expr(cur, line, l)?;
                let (r, rt) = self.expr(cur, line, r)?;
                if name == "mod" && (lt != Ty::Int || rt != Ty::Int) {
                    return Err(err(line, "`mod` requires integer operands"));
                }
                let ty = if lt == Ty::Real || rt == Ty::Real {
                    Ty::Real
                } else {
                    Ty::Int
                };
                Ok((ir::Expr::bin(intrinsic_op(name), l, r), ty))
            }
            ast::Expr::Elem(name, subs) => {
                let array = *self
                    .arrays
                    .get(name)
                    .ok_or_else(|| err(line, format!("`{name}` is not a declared array")))?;
                let index = self.subscripts(cur, line, array, subs)?;
                self.emit_checks(cur, array, &index);
                let ty = self.func.arrays[array.index()].ty;
                let t = self.fresh_temp(ty);
                self.func
                    .block_mut(cur)
                    .stmts
                    .push(Stmt::load(t, array, index));
                Ok((ir::Expr::var(t), ty))
            }
            ast::Expr::Un(op, inner) => {
                let (inner, ty) = self.expr(cur, line, inner)?;
                if *op == ast::UnOp::Not && ty != Ty::Int {
                    return Err(err(line, "`not` requires an integer operand"));
                }
                Ok((ir::Expr::Unary(conv_unop(*op), Box::new(inner)), ty))
            }
            ast::Expr::Bin(op, l, r) => {
                let (l, lt) = self.expr(cur, line, l)?;
                let (r, rt) = self.expr(cur, line, r)?;
                let irop = conv_binop(*op);
                let ty = if irop.is_comparison() || matches!(irop, ir::BinOp::And | ir::BinOp::Or) {
                    Ty::Int
                } else if lt == Ty::Real || rt == Ty::Real {
                    Ty::Real
                } else {
                    Ty::Int
                };
                if matches!(irop, ir::BinOp::And | ir::BinOp::Or | ir::BinOp::Mod)
                    && (lt != Ty::Int || rt != Ty::Int)
                {
                    return Err(err(line, "logical/mod operators require integers"));
                }
                Ok((ir::Expr::bin(irop, l, r), ty))
            }
        }
    }

    /// Lowers subscripts, enforcing integer type and matching rank.
    fn subscripts(
        &mut self,
        cur: BlockId,
        line: u32,
        array: ArrayId,
        subs: &[ast::Expr],
    ) -> Result<Vec<ir::Expr>, CompileError> {
        let info = &self.func.arrays[array.index()];
        let name = info.name.clone();
        let rank = info.rank();
        if subs.len() != rank {
            return Err(err(
                line,
                format!(
                    "array `{name}` has rank {rank} but {} subscripts given",
                    subs.len()
                ),
            ));
        }
        let mut out = Vec::with_capacity(subs.len());
        for s in subs {
            let (e, ty) = self.expr(cur, line, s)?;
            if ty != Ty::Int {
                return Err(err(line, format!("subscript of `{name}` must be integer")));
            }
            out.push(e);
        }
        Ok(out)
    }

    /// Emits the naive lower/upper canonical checks for an access.
    fn emit_checks(&mut self, cur: BlockId, array: ArrayId, index: &[ir::Expr]) {
        if self.checks == CheckInsertion::None {
            return;
        }
        let dims = self.func.arrays[array.index()].dims.clone();
        for (idx, (lo, hi)) in index.iter().zip(dims.iter()) {
            let lower = Check::unconditional(CheckExpr::lower(idx, lo));
            let upper = Check::unconditional(CheckExpr::upper(idx, hi));
            let b = self.func.block_mut(cur);
            b.stmts.push(Stmt::Check(lower));
            b.stmts.push(Stmt::Check(upper));
        }
    }

    // ---- statements ----------------------------------------------------

    /// Lowers one statement starting in `cur`, returning the block where
    /// control continues.
    fn stmt(&mut self, cur: BlockId, s: &ast::Stmt) -> Result<BlockId, CompileError> {
        match s {
            ast::Stmt::Assign {
                target,
                value,
                line,
            } => {
                match target {
                    ast::LValue::Var(name) => {
                        let v = self.lookup_scalar(*line, name)?;
                        if self.frozen.contains(&v) {
                            return Err(err(
                                *line,
                                format!("`{name}` appears in array bounds and cannot be assigned"),
                            ));
                        }
                        if self.active_loop_vars.contains(&v) {
                            return Err(err(
                                *line,
                                format!("loop variable `{name}` cannot be assigned in its loop"),
                            ));
                        }
                        let (e, ty) = self.expr(cur, *line, value)?;
                        let vt = self.func.vars[v.index()].ty;
                        if vt == Ty::Int && ty == Ty::Real {
                            return Err(err(*line, "cannot assign real to integer"));
                        }
                        self.func.block_mut(cur).stmts.push(Stmt::assign(v, e));
                    }
                    ast::LValue::Elem(name, subs) => {
                        let array = *self.arrays.get(name).ok_or_else(|| {
                            err(*line, format!("`{name}` is not a declared array"))
                        })?;
                        let index = self.subscripts(cur, *line, array, subs)?;
                        let (e, ty) = self.expr(cur, *line, value)?;
                        let at = self.func.arrays[array.index()].ty;
                        if at == Ty::Int && ty == Ty::Real {
                            return Err(err(*line, "cannot assign real to integer array"));
                        }
                        self.emit_checks(cur, array, &index);
                        self.func
                            .block_mut(cur)
                            .stmts
                            .push(Stmt::store(array, index, e));
                    }
                }
                Ok(cur)
            }
            ast::Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                line,
            } => {
                let v = self.lookup_scalar(*line, var)?;
                if self.func.vars[v.index()].ty != Ty::Int {
                    return Err(err(*line, format!("loop variable `{var}` must be integer")));
                }
                if self.frozen.contains(&v) {
                    return Err(err(*line, format!("`{var}` is bound-frozen")));
                }
                if self.active_loop_vars.contains(&v) {
                    return Err(err(*line, format!("`{var}` is already a loop variable")));
                }
                let step_val = match step {
                    None => 1,
                    Some(e) => {
                        let lowered = self.pure_int_expr(*line, e)?.fold();
                        match lowered.as_int() {
                            Some(0) => return Err(err(*line, "do step cannot be zero")),
                            Some(v) => v,
                            None => return Err(err(*line, "do step must be an integer constant")),
                        }
                    }
                };
                let (lo_e, lo_t) = self.expr(cur, *line, lo)?;
                let (hi_e, hi_t) = self.expr(cur, *line, hi)?;
                if lo_t != Ty::Int || hi_t != Ty::Int {
                    return Err(err(*line, "do bounds must be integer"));
                }
                // evaluate the limit once (Fortran trip-count semantics)
                let limit = if hi_e.as_int().is_some() {
                    hi_e
                } else {
                    let lv = self.fresh_temp(Ty::Int);
                    self.func.block_mut(cur).stmts.push(Stmt::assign(lv, hi_e));
                    ir::Expr::var(lv)
                };
                self.func.block_mut(cur).stmts.push(Stmt::assign(v, lo_e));
                let header = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                let latch = self.new_block();
                self.func.block_mut(cur).term = Terminator::Jump(header);
                let cmp = if step_val > 0 {
                    ir::BinOp::Le
                } else {
                    ir::BinOp::Ge
                };
                self.func.block_mut(header).term = Terminator::Branch {
                    cond: ir::Expr::bin(cmp, ir::Expr::var(v), limit),
                    then_bb: body_bb,
                    else_bb: exit,
                };
                self.active_loop_vars.push(v);
                self.loop_ctx.push((latch, exit));
                let mut bcur = body_bb;
                for s in body {
                    bcur = self.stmt(bcur, s)?;
                }
                self.loop_ctx.pop();
                self.active_loop_vars.pop();
                self.func.block_mut(bcur).term = Terminator::Jump(latch);
                self.func.block_mut(latch).stmts.push(Stmt::assign(
                    v,
                    ir::Expr::add(ir::Expr::var(v), ir::Expr::int(step_val)),
                ));
                self.func.block_mut(latch).term = Terminator::Jump(header);
                Ok(exit)
            }
            ast::Stmt::While { cond, body, line } => {
                let header = self.new_block();
                self.func.block_mut(cur).term = Terminator::Jump(header);
                let (c, ct) = self.expr(header, *line, cond)?;
                if ct != Ty::Int {
                    return Err(err(*line, "while condition must be integer (logical)"));
                }
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.func.block_mut(header).term = Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit,
                };
                self.loop_ctx.push((header, exit));
                let mut bcur = body_bb;
                for s in body {
                    bcur = self.stmt(bcur, s)?;
                }
                self.loop_ctx.pop();
                self.func.block_mut(bcur).term = Terminator::Jump(header);
                Ok(exit)
            }
            ast::Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                let (c, ct) = self.expr(cur, *line, cond)?;
                if ct != Ty::Int {
                    return Err(err(*line, "if condition must be integer (logical)"));
                }
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.func.block_mut(cur).term = Terminator::Branch {
                    cond: c,
                    then_bb,
                    else_bb,
                };
                let mut tcur = then_bb;
                for s in then_body {
                    tcur = self.stmt(tcur, s)?;
                }
                self.func.block_mut(tcur).term = Terminator::Jump(join);
                let mut ecur = else_bb;
                for s in else_body {
                    ecur = self.stmt(ecur, s)?;
                }
                self.func.block_mut(ecur).term = Terminator::Jump(join);
                Ok(join)
            }
            ast::Stmt::Call { name, args, line } => {
                let (callee, sigs, kind) = self
                    .sigs
                    .get(name)
                    .ok_or_else(|| err(*line, format!("no subroutine named `{name}`")))?
                    .clone();
                if kind == ast::UnitKind::Program {
                    return Err(err(
                        *line,
                        format!("`{name}` is the main program and cannot be called"),
                    ));
                }
                if sigs.len() != args.len() {
                    return Err(err(
                        *line,
                        format!(
                            "`{name}` takes {} arguments, {} given",
                            sigs.len(),
                            args.len()
                        ),
                    ));
                }
                let mut ir_args = Vec::with_capacity(args.len());
                for (a, sig) in args.iter().zip(sigs.iter()) {
                    match sig {
                        ParamSig::Array { rank, ty } => match a {
                            ast::Expr::Name(an) => {
                                let arr = *self.arrays.get(an).ok_or_else(|| {
                                    err(*line, format!("argument `{an}` must be an array"))
                                })?;
                                if self.func.arrays[arr.index()].rank() != *rank {
                                    return Err(err(
                                        *line,
                                        format!("array argument `{an}` has the wrong rank"),
                                    ));
                                }
                                // arrays are passed by reference, so the
                                // element types must match exactly (the
                                // callee's loads and stores would otherwise
                                // reinterpret the caller's storage)
                                if self.func.arrays[arr.index()].ty != *ty {
                                    return Err(err(
                                        *line,
                                        format!("array argument `{an}` has the wrong element type"),
                                    ));
                                }
                                ir_args.push(Arg::Array(arr));
                            }
                            _ => {
                                return Err(err(
                                    *line,
                                    format!("`{name}` expects an array name here"),
                                ))
                            }
                        },
                        ParamSig::Scalar(pt) => {
                            let (e, ty) = self.expr(cur, *line, a)?;
                            if *pt == Ty::Int && ty == Ty::Real {
                                return Err(err(*line, "cannot pass real to integer parameter"));
                            }
                            ir_args.push(Arg::Scalar(e));
                        }
                    }
                }
                self.func.block_mut(cur).stmts.push(Stmt::Call {
                    callee,
                    args: ir_args,
                });
                Ok(cur)
            }
            ast::Stmt::Print { value, line } => {
                let (e, _) = self.expr(cur, *line, value)?;
                self.func.block_mut(cur).stmts.push(Stmt::Emit(e));
                Ok(cur)
            }
            ast::Stmt::Exit { line } => {
                let &(_, exit) = self
                    .loop_ctx
                    .last()
                    .ok_or_else(|| err(*line, "`exit` outside of a loop"))?;
                self.func.block_mut(cur).term = Terminator::Jump(exit);
                // continue lowering into an unreachable block so any code
                // after `exit` still type-checks
                Ok(self.new_block())
            }
            ast::Stmt::Cycle { line } => {
                let &(next, _) = self
                    .loop_ctx
                    .last()
                    .ok_or_else(|| err(*line, "`cycle` outside of a loop"))?;
                self.func.block_mut(cur).term = Terminator::Jump(next);
                Ok(self.new_block())
            }
            ast::Stmt::Label { name, line } => {
                if !self.defined_labels.insert(name.clone()) {
                    return Err(err(*line, format!("label `{name}` defined twice")));
                }
                let target = self.label_block(name);
                self.func.block_mut(cur).term = Terminator::Jump(target);
                Ok(target)
            }
            ast::Stmt::Goto { name, .. } => {
                let target = self.label_block(name);
                self.func.block_mut(cur).term = Terminator::Jump(target);
                Ok(self.new_block())
            }
        }
    }
}

fn two_args<'e>(
    line: u32,
    name: &str,
    args: &'e [ast::Expr],
) -> Result<(&'e ast::Expr, &'e ast::Expr), CompileError> {
    if args.len() != 2 {
        return Err(err(line, format!("`{name}` takes exactly two arguments")));
    }
    Ok((&args[0], &args[1]))
}

fn intrinsic_op(name: &str) -> ir::BinOp {
    match name {
        "min" => ir::BinOp::Min,
        "max" => ir::BinOp::Max,
        "mod" => ir::BinOp::Mod,
        _ => unreachable!("not an intrinsic: {name}"),
    }
}

fn conv_unop(op: ast::UnOp) -> ir::UnOp {
    match op {
        ast::UnOp::Neg => ir::UnOp::Neg,
        ast::UnOp::Not => ir::UnOp::Not,
    }
}

fn conv_binop(op: ast::BinOp) -> ir::BinOp {
    match op {
        ast::BinOp::Add => ir::BinOp::Add,
        ast::BinOp::Sub => ir::BinOp::Sub,
        ast::BinOp::Mul => ir::BinOp::Mul,
        ast::BinOp::Div => ir::BinOp::Div,
        ast::BinOp::Mod => ir::BinOp::Mod,
        ast::BinOp::Min => ir::BinOp::Min,
        ast::BinOp::Max => ir::BinOp::Max,
        ast::BinOp::Lt => ir::BinOp::Lt,
        ast::BinOp::Le => ir::BinOp::Le,
        ast::BinOp::Gt => ir::BinOp::Gt,
        ast::BinOp::Ge => ir::BinOp::Ge,
        ast::BinOp::Eq => ir::BinOp::Eq,
        ast::BinOp::Ne => ir::BinOp::Ne,
        ast::BinOp::And => ir::BinOp::And,
        ast::BinOp::Or => ir::BinOp::Or,
    }
}

#[cfg(test)]
mod tests {
    use crate::{compile, compile_with, CheckInsertion};
    use nascent_ir::validate::assert_valid;
    use nascent_ir::Stmt;

    #[test]
    fn lowers_simple_program_with_checks() {
        let p = compile(
            "program p\n integer a(1:10)\n integer i\n do i = 1, 10\n a(i) = i\n enddo\nend\n",
        )
        .unwrap();
        assert_valid(&p);
        assert_eq!(p.check_count(), 2);
    }

    #[test]
    fn check_free_compilation() {
        let p = compile_with(
            "program p\n integer a(1:10)\n integer i\n do i = 1, 10\n a(i) = i\n enddo\nend\n",
            CheckInsertion::None,
        )
        .unwrap();
        assert_eq!(p.check_count(), 0);
    }

    #[test]
    fn two_dim_access_gets_four_checks() {
        let p = compile("program p\n integer a(1:4, 0:5)\n integer i\n i = 2\n a(i, i) = 9\nend\n")
            .unwrap();
        assert_eq!(p.check_count(), 4);
    }

    #[test]
    fn array_read_in_expression_flattens_to_load() {
        let p = compile(
            "program p\n integer a(1:10)\n integer i, x\n i = 1\n x = a(i) + a(i+1)\nend\n",
        )
        .unwrap();
        assert_valid(&p);
        let f = p.main_function();
        let loads = f
            .blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .filter(|s| matches!(s, Stmt::Load { .. }))
            .count();
        assert_eq!(loads, 2);
        assert_eq!(p.check_count(), 4);
    }

    #[test]
    fn undeclared_name_is_error() {
        assert!(compile("program p\n x = 1\nend\n").is_err());
    }

    #[test]
    fn assigning_loop_var_is_error() {
        let r = compile("program p\n integer i\n do i = 1, 3\n i = 5\n enddo\nend\n");
        assert!(r.is_err());
    }

    #[test]
    fn assigning_bound_var_is_error() {
        let r = compile(
            "subroutine s(n)\n integer n\n integer a(1:n)\n n = 3\nend\nprogram p\n call s(2)\nend\n",
        );
        assert!(r.is_err());
    }

    #[test]
    fn symbolic_bounds_require_subroutine() {
        let r = compile("program p\n integer n\n integer a(1:n)\nend\n");
        assert!(r.is_err());
        let ok = compile(
            "subroutine s(n)\n integer n\n integer a(1:n)\n a(1) = 0\nend\nprogram p\n call s(5)\nend\n",
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn calling_the_main_program_is_rejected() {
        assert!(compile("program p\n call p()\nend\n").is_err());
        // mutual subroutine recursion stays allowed (depth-limited at run time)
        let ok = compile(
            "subroutine a(x)\n integer x\n if (x > 0) then\n call b(x - 1)\n endif\nend\nsubroutine b(x)\n integer x\n call a(x)\nend\nprogram p\n call a(3)\nend\n",
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn call_arity_and_kinds_checked() {
        let base = "subroutine s(x, a)\n integer x\n integer a(1:10)\n a(x) = 0\nend\n";
        assert!(compile(&format!(
            "{base}program p\n integer b(1:10)\n call s(1, b)\nend\n"
        ))
        .is_ok());
        assert!(compile(&format!(
            "{base}program p\n integer b(1:10)\n call s(1)\nend\n"
        ))
        .is_err());
        assert!(compile(&format!(
            "{base}program p\n integer b(1:10)\n call s(b, b)\nend\n"
        ))
        .is_err());
        assert!(compile(&format!(
            "{base}program p\n integer y\n y = 0\n call s(1, y)\nend\n"
        ))
        .is_err());
    }

    #[test]
    fn real_to_integer_assignment_rejected() {
        assert!(compile("program p\n integer x\n x = 1.5\nend\n").is_err());
        assert!(compile("program p\n real x\n x = 1\nend\n").is_ok());
    }

    #[test]
    fn zero_step_rejected() {
        assert!(
            compile("program p\n integer i\n do i = 1, 3, 0\n print i\n enddo\nend\n").is_err()
        );
    }

    #[test]
    fn negative_step_uses_ge_condition() {
        let p = compile(
            "program p\n integer i\n integer a(1:10)\n do i = 10, 1, -1\n a(i) = i\n enddo\nend\n",
        )
        .unwrap();
        assert_valid(&p);
    }

    #[test]
    fn while_cond_loads_re_execute() {
        let p = compile(
            "program p\n integer a(1:10)\n integer i\n i = 1\n a(1) = 5\n while (a(i) > 0)\n a(i) = a(i) - 1\n endwhile\nend\n",
        )
        .unwrap();
        assert_valid(&p);
        // condition read: 2 checks in the header; body: 2 reads+writes more
        assert!(p.check_count() >= 6);
    }

    #[test]
    fn rank_mismatch_rejected() {
        assert!(compile("program p\n integer a(1:4,1:4)\n a(1) = 0\nend\n").is_err());
    }

    #[test]
    fn duplicate_declaration_rejected() {
        assert!(compile("program p\n integer x\n real x\nend\n").is_err());
    }

    #[test]
    fn mod_and_min_max_lower() {
        let p = compile("program p\n integer x\n x = mod(7, 3) + min(1, 2) + max(3, 4)\nend\n")
            .unwrap();
        assert_valid(&p);
    }
}
