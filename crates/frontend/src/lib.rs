//! MiniF — a small Fortran-like source language for the `nascent-rc`
//! range-check optimizer.
//!
//! The paper evaluates on Fortran programs compiled by the authors' Nascent
//! compiler; MiniF reproduces the relevant subset: `program`/`subroutine`
//! units, `integer`/`real` scalars and multi-dimensional arrays with
//! declared (possibly symbolic) bounds, counted `do` loops, `while` loops,
//! `if`/`else`, subroutine calls, and `print`.
//!
//! Lowering produces the [`nascent_ir`] CFG and inserts one lower-bound and
//! one upper-bound canonical range check per subscript per dimension —
//! the "naive range checking" baseline of Table 1.
//!
//! # Example
//!
//! ```
//! let src = r#"
//! program p
//!   integer a(1:10)
//!   integer i
//!   do i = 1, 10
//!     a(i) = 2 * i
//!   enddo
//! end
//! "#;
//! let prog = nascent_frontend::compile(src).expect("valid program");
//! // 1 store * 2 checks (lower + upper)
//! assert_eq!(prog.check_count(), 2);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use error::{CompileError, ErrorKind};

use nascent_ir::Program;

/// Whether lowering inserts naive range checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckInsertion {
    /// Insert a lower and an upper check before every array access (the
    /// paper's unoptimized baseline).
    #[default]
    Naive,
    /// Insert no checks (used for the "instructions without range
    /// checking" columns of Table 1).
    None,
}

/// Compiles MiniF source to IR with naive range checks.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first lexical, syntactic or
/// semantic problem found.
pub fn compile(src: &str) -> Result<Program, CompileError> {
    compile_with(src, CheckInsertion::Naive)
}

/// Compiles MiniF source with explicit control over check insertion.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first lexical, syntactic or
/// semantic problem found.
pub fn compile_with(src: &str, checks: CheckInsertion) -> Result<Program, CompileError> {
    let mut sp = nascent_obs::trace::span("compile", "frontend");
    sp.attr("bytes", src.len());
    let tokens = lexer::lex(src)?;
    let ast = parser::parse(&tokens)?;
    lower::lower(&ast, checks)
}
