//! Abstract syntax tree for MiniF.

/// A parsed source file: one or more units, at most one `program`.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// Compilation units in source order.
    pub units: Vec<Unit>,
}

/// Unit kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    /// The main program.
    Program,
    /// A callable subroutine.
    Subroutine,
}

/// One `program`/`subroutine` … `end` unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// Program or subroutine.
    pub kind: UnitKind,
    /// Unit name.
    pub name: String,
    /// Parameter names (types come from the declarations).
    pub params: Vec<String>,
    /// Named compile-time constants (`parameter n = 100`), in order.
    pub consts: Vec<(String, i64, u32)>,
    /// Declarations.
    pub decls: Vec<Decl>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// 1-based source line of the unit header.
    pub line: u32,
}

/// Scalar type name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    /// `integer`
    Integer,
    /// `real`
    Real,
}

/// A declaration line: `integer i, j` or `real a(1:10, 0:n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Declared type.
    pub ty: TypeName,
    /// Declared items.
    pub items: Vec<DeclItem>,
    /// 1-based source line.
    pub line: u32,
}

/// One declared entity.
#[derive(Debug, Clone, PartialEq)]
pub enum DeclItem {
    /// A scalar.
    Scalar(String),
    /// An array with `(lower, upper)` bounds per dimension. A bare extent
    /// `a(n)` parses as bounds `(1, n)` following Fortran.
    Array(String, Vec<(Expr, Expr)>),
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element.
    Elem(String, Vec<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target = value`
    Assign {
        target: LValue,
        value: Expr,
        line: u32,
    },
    /// `do var = lo, hi [, step] … enddo`
    Do {
        var: String,
        lo: Expr,
        hi: Expr,
        step: Option<Expr>,
        body: Vec<Stmt>,
        line: u32,
    },
    /// `while (cond) … endwhile`
    While {
        cond: Expr,
        body: Vec<Stmt>,
        line: u32,
    },
    /// `if (cond) then … [else …] endif`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        line: u32,
    },
    /// `call name(args…)`
    Call {
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// `print expr`
    Print { value: Expr, line: u32 },
    /// `exit` — leave the innermost enclosing loop.
    Exit { line: u32 },
    /// `cycle` — continue with the next iteration of the innermost loop.
    Cycle { line: u32 },
    /// `label name` — a jump target.
    Label { name: String, line: u32 },
    /// `goto name` — unconditional jump to a label in the same unit.
    Goto { name: String, line: u32 },
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Min,
    Max,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

/// Unary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Scalar variable *or* (after name resolution) zero-arg ambiguity —
    /// the parser cannot distinguish `n` the scalar from an array without
    /// a symbol table, so `Name` covers scalars only; subscripted names
    /// parse as [`Expr::Elem`].
    Name(String),
    /// `array(subscripts…)` — also the syntax for `min`/`max` intrinsics,
    /// disambiguated during lowering.
    Elem(String, Vec<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Builder for binary nodes.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }
}
