//! The abstract machine: frames, array storage, evaluation and counters.

use std::fmt;

use nascent_ir::{
    Arg, ArrayId, Atom, BinOp, BlockId, Check, Expr, FuncId, LinForm, Param, Program, Stmt,
    Terminator, Ty, UnOp,
};

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Real value.
    Real(f64),
}

impl Value {
    /// Integer view; truncates reals toward zero.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Real(v) => v as i64,
        }
    }

    /// Real view.
    pub fn as_real(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Real(v) => v,
        }
    }

    /// The zero value of a scalar type.
    pub fn zero(ty: Ty) -> Value {
        match ty {
            Ty::Int => Value::Int(0),
            Ty::Real => Value::Real(0.0),
        }
    }

    /// Coerces the value to a scalar type (Fortran assignment conversion).
    pub fn coerce(self, ty: Ty) -> Value {
        match ty {
            Ty::Int => Value::Int(self.as_int()),
            Ty::Real => Value::Real(self.as_real()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
        }
    }
}

/// Resource limits for a run.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum dynamic instructions (checks included) before the run is
    /// aborted with [`RunError::StepLimit`].
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_steps: 200_000_000,
            max_call_depth: 128,
        }
    }
}

/// A detected range violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    /// Function in which the check fired.
    pub function: String,
    /// The check, rendered in the paper's `Check (...)` notation.
    pub check: String,
    /// Dynamic instruction count (non-check) at the moment of the trap.
    pub at_instruction: u64,
    /// Number of non-check *statements* executed at the moment of the
    /// trap. Terminators are excluded, so the count is insensitive to the
    /// empty jump blocks that edge-splitting placements introduce; since
    /// the optimizer never adds, removes or moves non-check statements,
    /// this is the comparable "program execution point" of the paper's
    /// preservation criterion ("detected ... no later than the execution
    /// point at which the violation in the unoptimized program is
    /// detected").
    pub at_progress: u64,
}

/// Outcome of a completed (or trapped) run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Dynamic non-check instructions executed.
    pub dynamic_instructions: u64,
    /// Non-check, non-trap statements executed — the jump-insensitive
    /// progress metric (see [`Trap::at_progress`]). Unlike instruction
    /// counts, this is invariant under check placement (edge splitting
    /// adds jumps but no statements), so optimized and naive runs of the
    /// same program must agree on it exactly.
    pub dynamic_progress: u64,
    /// Dynamic range checks performed (guards that failed suppress the
    /// check and it is not counted).
    pub dynamic_checks: u64,
    /// Dynamic guard evaluations for conditional checks (reported
    /// separately so hoisting's residual overhead is visible).
    pub dynamic_guard_ops: u64,
    /// The trap that ended the run, if any.
    pub trap: Option<Trap>,
    /// Values emitted by `print`, in order.
    pub output: Vec<Value>,
}

/// A run that could not produce a meaningful result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The step budget was exhausted.
    StepLimit,
    /// Call depth exceeded.
    CallDepth,
    /// Integer division or remainder by zero.
    DivisionByZero { function: String },
    /// An array access went outside the declared bounds without a check
    /// trapping first — either the program was compiled without checks, or
    /// the optimizer is unsound.
    UndetectedViolation {
        function: String,
        array: String,
        dim: usize,
        index: i64,
        lo: i64,
        hi: i64,
    },
    /// An array was declared with `lower > upper + 1` (negative extent).
    BadBounds { function: String, array: String },
    /// The native tier failed outside program semantics: no C compiler,
    /// compile rejection, run timeout, or protocol corruption. Never
    /// produced by the interpreter engines.
    NativeBackend(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::StepLimit => write!(f, "step limit exceeded"),
            RunError::CallDepth => write!(f, "call depth exceeded"),
            RunError::DivisionByZero { function } => {
                write!(f, "division by zero in {function}")
            }
            RunError::UndetectedViolation {
                function,
                array,
                dim,
                index,
                lo,
                hi,
            } => write!(
                f,
                "undetected range violation in {function}: {array} dim {dim} index {index} not in {lo}..{hi}"
            ),
            RunError::BadBounds { function, array } => {
                write!(f, "array {array} in {function} has negative extent")
            }
            RunError::NativeBackend(msg) => write!(f, "native tier: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// One statement execution, as recorded by [`run_traced`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Function executing the statement.
    pub function: String,
    /// Block of the statement.
    pub block: nascent_ir::BlockId,
    /// Statement index within the block.
    pub stmt: usize,
    /// The statement, pretty-printed with source names.
    pub rendered: String,
}

/// Runs a program's main function to completion, trap, or error.
///
/// # Errors
///
/// See [`RunError`].
pub fn run(prog: &Program, limits: &Limits) -> Result<RunResult, RunError> {
    run_inner(prog, limits, None).0
}

/// Like [`run`], additionally recording up to `max_events` statement
/// executions (checks included) for debugging. The trace is returned even
/// when the run errors.
pub fn run_traced(
    prog: &Program,
    limits: &Limits,
    max_events: usize,
) -> (Result<RunResult, RunError>, Vec<TraceEvent>) {
    let (r, t) = run_inner(prog, limits, Some(max_events));
    (r, t.unwrap_or_default())
}

fn run_inner(
    prog: &Program,
    limits: &Limits,
    trace_cap: Option<usize>,
) -> (Result<RunResult, RunError>, Option<Vec<TraceEvent>>) {
    let mut m = Machine {
        prog,
        limits,
        instructions: 0,
        progress: 0,
        checks: 0,
        guard_ops: 0,
        output: Vec::new(),
        arrays: Vec::new(),
        trace_cap: trace_cap.unwrap_or(0),
        trace: trace_cap.map(|_| Vec::new()),
    };
    let result = m.call(prog.main, &[], 0);
    let trace = m.trace.take();
    let r = result.map(|trap| RunResult {
        dynamic_instructions: m.instructions,
        dynamic_progress: m.progress,
        dynamic_checks: m.checks,
        dynamic_guard_ops: m.guard_ops,
        trap,
        output: m.output,
    });
    (r, trace)
}

/// Heap-allocated array object (shared by reference across calls).
#[derive(Debug)]
struct ArrayObj {
    dims: Vec<(i64, i64)>,
    data: Vec<Value>,
}

/// Per-call state.
struct Frame {
    vars: Vec<Value>,
    /// For each local array slot: index into the machine's array arena.
    arrays: Vec<usize>,
}

struct Machine<'a> {
    prog: &'a Program,
    limits: &'a Limits,
    instructions: u64,
    progress: u64,
    checks: u64,
    guard_ops: u64,
    output: Vec<Value>,
    arrays: Vec<ArrayObj>,
    trace_cap: usize,
    trace: Option<Vec<TraceEvent>>,
}

impl<'a> Machine<'a> {
    fn charge(&mut self, cost: u64) -> Result<(), RunError> {
        self.instructions += cost;
        if self.instructions + self.checks > self.limits.max_steps {
            return Err(RunError::StepLimit);
        }
        Ok(())
    }

    /// Executes one function; passed-in array arguments occupy the callee's
    /// parameter array slots. Returns a trap if one fired.
    fn call(
        &mut self,
        fid: FuncId,
        args: &[CallArg],
        depth: usize,
    ) -> Result<Option<Trap>, RunError> {
        if depth > self.limits.max_call_depth {
            return Err(RunError::CallDepth);
        }
        let f = self.prog.function(fid);
        let mut frame = Frame {
            vars: f.vars.iter().map(|v| Value::zero(v.ty)).collect(),
            arrays: vec![usize::MAX; f.arrays.len()],
        };
        // bind parameters
        for (p, a) in f.params.iter().zip(args.iter()) {
            match (p, a) {
                (Param::Scalar(v), CallArg::Scalar(val)) => {
                    frame.vars[v.index()] = val.coerce(f.vars[v.index()].ty);
                }
                (Param::Array(slot), CallArg::Array(obj)) => {
                    frame.arrays[slot.index()] = *obj;
                }
                _ => unreachable!("frontend checked call kinds"),
            }
        }
        // allocate local (non-parameter) arrays, bounds evaluated on entry
        for (i, info) in f.arrays.iter().enumerate() {
            if frame.arrays[i] != usize::MAX {
                continue;
            }
            let mut dims = Vec::with_capacity(info.dims.len());
            let mut len: usize = 1;
            for (lo, hi) in &info.dims {
                let lo = self.eval(f, &frame, lo)?.as_int();
                let hi = self.eval(f, &frame, hi)?.as_int();
                if hi < lo - 1 {
                    return Err(RunError::BadBounds {
                        function: f.name.clone(),
                        array: info.name.clone(),
                    });
                }
                let extent = (hi - lo + 1).max(0) as usize;
                len = len.saturating_mul(extent);
                dims.push((lo, hi));
            }
            let idx = self.arrays.len();
            self.arrays.push(ArrayObj {
                dims,
                data: vec![Value::zero(info.ty); len],
            });
            frame.arrays[i] = idx;
        }

        // interpret blocks
        let mut bb: BlockId = f.entry;
        loop {
            let block = f.block(bb);
            for (si, stmt) in block.stmts.iter().enumerate() {
                self.charge(stmt.cost())?;
                // checks and traps do not advance the comparable execution
                // point (the optimizer inserts, moves and folds them)
                if !matches!(stmt, Stmt::Check(_) | Stmt::Trap { .. }) {
                    self.progress += 1;
                }
                if let Some(trace) = &mut self.trace {
                    if trace.len() < self.trace_cap {
                        trace.push(TraceEvent {
                            function: f.name.clone(),
                            block: bb,
                            stmt: si,
                            rendered: nascent_ir::pretty::stmt_to_string(f, stmt),
                        });
                    }
                }
                match stmt {
                    Stmt::Assign { var, value } => {
                        let v = self.eval(f, &frame, value)?;
                        frame.vars[var.index()] = v.coerce(f.vars[var.index()].ty);
                    }
                    Stmt::Load { var, array, index } => {
                        let offset = self.element_offset(f, &frame, *array, index)?;
                        let obj = frame.arrays[array.index()];
                        let v = self.arrays[obj].data[offset];
                        frame.vars[var.index()] = v.coerce(f.vars[var.index()].ty);
                    }
                    Stmt::Store {
                        array,
                        index,
                        value,
                    } => {
                        let v = self.eval(f, &frame, value)?;
                        let offset = self.element_offset(f, &frame, *array, index)?;
                        let obj = frame.arrays[array.index()];
                        let ty = f.arrays[array.index()].ty;
                        self.arrays[obj].data[offset] = v.coerce(ty);
                    }
                    Stmt::Check(check) => {
                        if let Some(trap) = self.perform_check(f, &frame, check)? {
                            return Ok(Some(trap));
                        }
                    }
                    Stmt::Trap { message } => {
                        return Ok(Some(Trap {
                            function: f.name.clone(),
                            check: format!("TRAP \"{message}\""),
                            at_instruction: self.instructions,
                            at_progress: self.progress,
                        }));
                    }
                    Stmt::Call { callee, args } => {
                        let mut call_args = Vec::with_capacity(args.len());
                        for a in args {
                            match a {
                                Arg::Scalar(e) => {
                                    call_args.push(CallArg::Scalar(self.eval(f, &frame, e)?))
                                }
                                Arg::Array(id) => {
                                    call_args.push(CallArg::Array(frame.arrays[id.index()]))
                                }
                            }
                        }
                        if let Some(trap) = self.call(*callee, &call_args, depth + 1)? {
                            return Ok(Some(trap));
                        }
                    }
                    Stmt::Emit(e) => {
                        let v = self.eval(f, &frame, e)?;
                        self.output.push(v);
                    }
                }
            }
            self.charge(block.term.cost())?;
            match &block.term {
                Terminator::Jump(t) => bb = *t,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.eval(f, &frame, cond)?;
                    bb = if c.as_int() != 0 { *then_bb } else { *else_bb };
                }
                Terminator::Return => return Ok(None),
            }
        }
    }

    /// Evaluates guards then the check; counts and traps accordingly.
    fn perform_check(
        &mut self,
        f: &nascent_ir::Function,
        frame: &Frame,
        check: &Check,
    ) -> Result<Option<Trap>, RunError> {
        for g in &check.guards {
            self.guard_ops += 1;
            if !self.eval_check_expr(frame, g) {
                return Ok(None); // guard failed: check suppressed
            }
        }
        self.checks += 1;
        if self.checks + self.instructions > self.limits.max_steps {
            return Err(RunError::StepLimit);
        }
        if self.eval_check_expr(frame, &check.cond) {
            Ok(None)
        } else {
            Ok(Some(Trap {
                function: f.name.clone(),
                check: check.to_string(),
                at_instruction: self.instructions,
                at_progress: self.progress,
            }))
        }
    }

    /// Evaluates a canonical check `form <= bound` over integer variables.
    fn eval_check_expr(&self, frame: &Frame, ce: &nascent_ir::CheckExpr) -> bool {
        self.eval_linform(frame, ce.form()) <= ce.bound()
    }

    fn eval_linform(&self, frame: &Frame, form: &LinForm) -> i64 {
        let mut acc = form.constant_part();
        for (term, coeff) in form.terms() {
            let mut prod: i64 = 1;
            for atom in term.atoms() {
                let v = match atom {
                    Atom::Var(v) => frame.vars[v.index()].as_int(),
                    Atom::Opaque(e) => self.eval_pure(frame, e).map_or(0, Value::as_int),
                };
                prod = prod.wrapping_mul(v);
            }
            acc = acc.wrapping_add(coeff.wrapping_mul(prod));
        }
        acc
    }

    /// Pure expression evaluation that cannot fail (division by zero in an
    /// opaque check atom yields `None`, treated as 0 by the caller; the
    /// frontend only creates opaque atoms from subscript expressions that
    /// the surrounding statement would also evaluate).
    fn eval_pure(&self, frame: &Frame, e: &Expr) -> Option<Value> {
        match e {
            Expr::IntConst(v) => Some(Value::Int(*v)),
            Expr::RealConst(r) => Some(Value::Real(r.value())),
            Expr::Var(v) => Some(frame.vars[v.index()]),
            Expr::Unary(op, inner) => {
                let v = self.eval_pure(frame, inner)?;
                Some(apply_unop(*op, v))
            }
            Expr::Binary(op, l, r) => {
                let l = self.eval_pure(frame, l)?;
                let r = self.eval_pure(frame, r)?;
                apply_binop(*op, l, r)
            }
        }
    }

    fn eval(&self, f: &nascent_ir::Function, frame: &Frame, e: &Expr) -> Result<Value, RunError> {
        // `ok_or_else`, not `ok_or`: this is the interpreter's hottest
        // path, and the eager variant would clone the function name on
        // every single expression evaluation just to throw it away.
        self.eval_pure(frame, e)
            .ok_or_else(|| RunError::DivisionByZero {
                function: f.name.clone(),
            })
    }

    /// Computes the row-major offset of an element, reporting an
    /// out-of-bounds subscript as an undetected violation.
    fn element_offset(
        &self,
        f: &nascent_ir::Function,
        frame: &Frame,
        array: ArrayId,
        index: &[Expr],
    ) -> Result<usize, RunError> {
        let obj = &self.arrays[frame.arrays[array.index()]];
        let mut offset: usize = 0;
        for (d, (e, (lo, hi))) in index.iter().zip(obj.dims.iter()).enumerate() {
            let i = self.eval(f, frame, e)?.as_int();
            if i < *lo || i > *hi {
                return Err(RunError::UndetectedViolation {
                    function: f.name.clone(),
                    array: f.arrays[array.index()].name.clone(),
                    dim: d,
                    index: i,
                    lo: *lo,
                    hi: *hi,
                });
            }
            let extent = (hi - lo + 1) as usize;
            offset = offset * extent + (i - lo) as usize;
        }
        Ok(offset)
    }
}

enum CallArg {
    Scalar(Value),
    Array(usize),
}

pub(crate) fn apply_unop(op: UnOp, v: Value) -> Value {
    match (op, v) {
        (UnOp::Neg, Value::Int(v)) => Value::Int(v.wrapping_neg()),
        (UnOp::Neg, Value::Real(v)) => Value::Real(-v),
        (UnOp::Not, v) => Value::Int(i64::from(v.as_int() == 0)),
    }
}

pub(crate) fn apply_binop(op: BinOp, l: Value, r: Value) -> Option<Value> {
    use Value::{Int, Real};
    let real = matches!(l, Real(_)) || matches!(r, Real(_));
    if real {
        let (a, b) = (l.as_real(), r.as_real());
        return Some(match op {
            BinOp::Add => Real(a + b),
            BinOp::Sub => Real(a - b),
            BinOp::Mul => Real(a * b),
            BinOp::Div => Real(a / b),
            BinOp::Mod => Real(a % b),
            BinOp::Min => Real(a.min(b)),
            BinOp::Max => Real(a.max(b)),
            BinOp::Lt => Int(i64::from(a < b)),
            BinOp::Le => Int(i64::from(a <= b)),
            BinOp::Gt => Int(i64::from(a > b)),
            BinOp::Ge => Int(i64::from(a >= b)),
            BinOp::Eq => Int(i64::from(a == b)),
            BinOp::Ne => Int(i64::from(a != b)),
            BinOp::And => Int(i64::from(a != 0.0 && b != 0.0)),
            BinOp::Or => Int(i64::from(a != 0.0 || b != 0.0)),
        });
    }
    let (a, b) = (l.as_int(), r.as_int());
    nascent_ir::expr::eval_int_binop(op, a, b).map(Int)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::{compile, compile_with, CheckInsertion};

    fn run_src(src: &str) -> RunResult {
        run(&compile(src).unwrap(), &Limits::default()).unwrap()
    }

    #[test]
    fn computes_and_emits() {
        let r = run_src("program p\n integer x\n x = 2 + 3 * 4\n print x\nend\n");
        assert_eq!(r.output, vec![Value::Int(14)]);
        assert!(r.trap.is_none());
        assert_eq!(r.dynamic_checks, 0);
    }

    #[test]
    fn loop_executes_and_counts_checks() {
        let r = run_src(
            "program p\n integer a(1:10)\n integer i, s\n s = 0\n do i = 1, 10\n a(i) = i\n enddo\n do i = 1, 10\n s = s + a(i)\n enddo\n print s\nend\n",
        );
        assert_eq!(r.output, vec![Value::Int(55)]);
        assert_eq!(r.dynamic_checks, 40); // 10 stores * 2 + 10 loads * 2
        assert!(r.dynamic_instructions > 0);
    }

    #[test]
    fn failing_check_traps() {
        let r = run_src("program p\n integer a(1:5)\n integer i\n i = 7\n a(i) = 1\nend\n");
        let trap = r.trap.expect("should trap");
        assert!(trap.check.contains("Check ("), "got {}", trap.check);
    }

    #[test]
    fn lower_bound_violation_traps() {
        let r = run_src("program p\n integer a(3:5)\n integer i\n i = 1\n a(i) = 1\nend\n");
        assert!(r.trap.is_some());
    }

    #[test]
    fn unchecked_violation_is_error() {
        let p = compile_with(
            "program p\n integer a(1:5)\n integer i\n i = 7\n a(i) = 1\nend\n",
            CheckInsertion::None,
        )
        .unwrap();
        match run(&p, &Limits::default()) {
            Err(RunError::UndetectedViolation { index: 7, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trap_stops_execution_immediately() {
        let r = run_src(
            "program p\n integer a(1:5)\n integer i\n i = 9\n print 1\n a(i) = 0\n print 2\nend\n",
        );
        assert!(r.trap.is_some());
        assert_eq!(r.output, vec![Value::Int(1)]); // second print unreached
    }

    #[test]
    fn subroutine_arrays_pass_by_reference() {
        let r = run_src(
            "subroutine fill(n, a)\n integer n\n integer a(1:10)\n integer i\n do i = 1, n\n a(i) = i * i\n enddo\nend\nprogram p\n integer b(1:10)\n call fill(4, b)\n print b(4)\nend\n",
        );
        assert_eq!(r.output, vec![Value::Int(16)]);
    }

    #[test]
    fn scalars_pass_by_value() {
        let r = run_src(
            "subroutine s(x)\n integer x\n x = 99\nend\nprogram p\n integer y\n y = 5\n call s(y)\n print y\nend\n",
        );
        assert_eq!(r.output, vec![Value::Int(5)]);
    }

    #[test]
    fn adjustable_array_bounds_evaluated_on_entry() {
        let r = run_src(
            "subroutine s(n)\n integer n\n integer a(1:n)\n a(n) = 42\n print a(n)\nend\nprogram p\n call s(3)\nend\n",
        );
        assert_eq!(r.output, vec![Value::Int(42)]);
        assert!(r.trap.is_none());
    }

    #[test]
    fn while_loop_and_reals() {
        let r = run_src(
            "program p\n real x\n integer i\n x = 1.0\n i = 0\n while (i < 3)\n x = x * 2.0\n i = i + 1\n endwhile\n print x\nend\n",
        );
        assert_eq!(r.output, vec![Value::Real(8.0)]);
    }

    #[test]
    fn division_by_zero_is_error() {
        let p = compile("program p\n integer x\n x = 0\n x = 1 / x\nend\n").unwrap();
        assert!(matches!(
            run(&p, &Limits::default()),
            Err(RunError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn step_limit_catches_infinite_loop() {
        let p =
            compile("program p\n integer i\n i = 0\n while (0 == 0)\n i = i + 1\n endwhile\nend\n")
                .unwrap();
        let limits = Limits {
            max_steps: 10_000,
            max_call_depth: 8,
        };
        assert_eq!(run(&p, &limits), Err(RunError::StepLimit));
    }

    #[test]
    fn recursion_depth_limited() {
        let p =
            compile("subroutine r(x)\n integer x\n call r(x)\nend\nprogram p\n call r(1)\nend\n")
                .unwrap();
        assert!(matches!(
            run(&p, &Limits::default()),
            Err(RunError::CallDepth) | Err(RunError::StepLimit)
        ));
    }

    #[test]
    fn multi_dim_row_major_addressing() {
        let r = run_src(
            "program p\n integer a(1:3, 1:4)\n integer i, j\n do i = 1, 3\n do j = 1, 4\n a(i, j) = 10 * i + j\n enddo\n enddo\n print a(2, 3)\n print a(3, 1)\nend\n",
        );
        assert_eq!(r.output, vec![Value::Int(23), Value::Int(31)]);
    }

    #[test]
    fn negative_step_loop_runs_downward() {
        let r = run_src(
            "program p\n integer i\n integer a(1:5)\n do i = 5, 1, -1\n a(i) = 6 - i\n enddo\n print a(5)\nend\n",
        );
        assert_eq!(r.output, vec![Value::Int(1)]);
    }

    #[test]
    fn zero_trip_loop_body_never_runs() {
        let r = run_src(
            "program p\n integer i\n integer a(1:5)\n do i = 3, 1\n a(99) = 0\n enddo\n print 7\nend\n",
        );
        assert!(r.trap.is_none());
        assert_eq!(r.output, vec![Value::Int(7)]);
        assert_eq!(r.dynamic_checks, 0);
    }
}
