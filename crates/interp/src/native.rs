//! The native execution tier: run via `nascent-cback`'s compiled,
//! cached, instrumented-C binaries and convert the parsed protocol back
//! into the interpreter's [`RunResult`] / [`RunError`] types.
//!
//! The emitted protocol carries everything the interpreter reports —
//! counters (instructions, progress, checks, guard ops), outputs, the
//! full trap record (function, check string, instruction and progress
//! position), and structured runtime errors — so the conversion here is
//! field-for-field, and the three engines are bit-comparable.

use nascent_cback::{CRunError, CRunResult, CRuntimeError};
use nascent_ir::Program;

use crate::machine::{Limits, RunError, RunResult, Trap, Value};

/// Runs `prog` on the native tier: emitted to instrumented C, compiled
/// through the process-wide content-hash compile cache
/// ([`nascent_cback::native::global`]), and executed as a child process
/// with the limits passed in the environment.
///
/// # Errors
///
/// Program-semantics failures map onto the interpreter's own
/// [`RunError`] variants; infrastructure failures (no C compiler,
/// compile rejection, timeout, protocol corruption) surface as
/// [`RunError::NativeBackend`].
pub fn run_native(prog: &Program, limits: &Limits) -> Result<RunResult, RunError> {
    match nascent_cback::native::global().run(prog, limits.max_steps, limits.max_call_depth as u64)
    {
        Ok(c) => Ok(convert(c)),
        Err(CRunError::Runtime(e)) => Err(match e {
            CRuntimeError::StepLimit => RunError::StepLimit,
            CRuntimeError::CallDepth => RunError::CallDepth,
            CRuntimeError::DivisionByZero { function } => RunError::DivisionByZero { function },
            CRuntimeError::OutOfBounds {
                function,
                array,
                dim,
                index,
                lo,
                hi,
            } => RunError::UndetectedViolation {
                function,
                array,
                dim,
                index,
                lo,
                hi,
            },
            CRuntimeError::BadBounds { function, array } => RunError::BadBounds { function, array },
        }),
        Err(other) => Err(RunError::NativeBackend(other.to_string())),
    }
}

fn convert(c: CRunResult) -> RunResult {
    RunResult {
        dynamic_instructions: c.dynamic_instructions,
        dynamic_progress: c.dynamic_progress,
        dynamic_checks: c.dynamic_checks,
        dynamic_guard_ops: c.dynamic_guard_ops,
        trap: c.trap.map(|t| Trap {
            function: t.function,
            check: t.check,
            at_instruction: t.at_instruction,
            at_progress: t.at_progress,
        }),
        output: c
            .output
            .into_iter()
            .map(|(kind, bits)| match kind {
                'i' => Value::Int(bits as i64),
                _ => Value::Real(f64::from_bits(bits)),
            })
            .collect(),
    }
}
