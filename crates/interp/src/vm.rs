//! The register-bytecode dispatch loop.
//!
//! Executes a [`CompiledProgram`] with semantics bit-identical to the
//! tree-walking interpreter in [`machine`](crate::machine): the same
//! `dynamic_instructions` / `dynamic_progress` / `dynamic_checks` /
//! `dynamic_guard_ops` counters, the same trap points, the same errors
//! (see the [`bytecode`](crate::bytecode) module docs for the one
//! pathological error-ordering divergence on unchecked multi-dimensional
//! accesses). Strings for traps and errors are materialized only at the
//! point a trap or error actually fires — never on the hot path.
//!
//! The hot path works exclusively on two flat register banks (`i64` and
//! `f64`) and typed array storage; the interpreter's `Value` enum appears
//! only at frame boundaries (parameter binding, `print` output) and in
//! the two residual tree evaluations (opaque check atoms, adjustable
//! array bounds).

use nascent_ir::{expr::eval_int_binop, BinOp, Expr, FuncId, Param, Ty};

use crate::bytecode::{
    ArgSpec, AtomSpec, CompiledFunction, CompiledProgram, Instr, LinCheck, TermSpec,
};
use crate::machine::{apply_binop, apply_unop, Limits, RunError, RunResult, Trap, Value};

/// Runs a compiled program's main function to completion, trap, or error.
///
/// # Errors
///
/// See [`RunError`].
pub fn run_compiled(prog: &CompiledProgram, limits: &Limits) -> Result<RunResult, RunError> {
    // soundness of the unchecked dispatch accesses: `CompiledProgram`'s
    // fields are `pub(crate)`, so every program reaching here was built
    // (and validated instruction-by-instruction) by `bytecode::lower`
    let mut vm = Vm {
        prog,
        limits,
        instructions: 0,
        progress: 0,
        checks: 0,
        guard_ops: 0,
        output: Vec::new(),
        arrays: Vec::new(),
    };
    let trap = vm.call(prog.main, &[], 0)?;
    Ok(RunResult {
        dynamic_instructions: vm.instructions,
        dynamic_progress: vm.progress,
        dynamic_checks: vm.checks,
        dynamic_guard_ops: vm.guard_ops,
        trap,
        output: vm.output,
    })
}

/// Heap-allocated array object (shared by reference across calls).
/// Storage is typed by the declared element type — the frontend enforces
/// that arrays are always passed to parameters of the same element type,
/// so exactly one of `data_i`/`data_f` is in use.
struct ArrayObj {
    dims: Vec<(i64, i64)>,
    /// Cached `dims[0].0` for the rank-1/rank-2 fast paths.
    lo0: i64,
    /// Cached extent of dimension 0 for the rank-1/rank-2 fast paths.
    ext0: usize,
    /// Cached `dims[1].0` (0 when rank < 2).
    lo1: i64,
    /// Cached extent of dimension 1 (0 when rank < 2).
    ext1: usize,
    data_i: Vec<i64>,
    data_f: Vec<f64>,
}

enum CallArg {
    Scalar(Value),
    Array(usize),
}

struct Vm<'a> {
    prog: &'a CompiledProgram,
    limits: &'a Limits,
    instructions: u64,
    progress: u64,
    checks: u64,
    guard_ops: u64,
    output: Vec<Value>,
    arrays: Vec<ArrayObj>,
}

/// Pure tree evaluation against the typed register banks (variables
/// resolve through `var_slots`). Used for adjustable array bounds at
/// frame setup and for opaque check atoms — the only places the VM still
/// walks an expression tree.
fn eval_pure_slots(
    iregs: &[i64],
    fregs: &[f64],
    var_slots: &[(Ty, u32)],
    e: &Expr,
) -> Option<Value> {
    match e {
        Expr::IntConst(v) => Some(Value::Int(*v)),
        Expr::RealConst(r) => Some(Value::Real(r.value())),
        Expr::Var(v) => Some(match var_slots[v.index()] {
            (Ty::Int, r) => Value::Int(iregs[r as usize]),
            (Ty::Real, r) => Value::Real(fregs[r as usize]),
        }),
        Expr::Unary(op, inner) => Some(apply_unop(
            *op,
            eval_pure_slots(iregs, fregs, var_slots, inner)?,
        )),
        Expr::Binary(op, l, r) => {
            let l = eval_pure_slots(iregs, fregs, var_slots, l)?;
            let r = eval_pure_slots(iregs, fregs, var_slots, r)?;
            apply_binop(*op, l, r)
        }
    }
}

/// Builds the out-of-bounds error off the hot path.
#[cold]
#[inline(never)]
fn oob(f: &CompiledFunction, arr: u32, dim: usize, index: i64, lo: i64, hi: i64) -> RunError {
    RunError::UndetectedViolation {
        function: f.name.clone(),
        array: f.arrays[arr as usize].name.clone(),
        dim,
        index,
        lo,
        hi,
    }
}

/// Materializes a trap (strings allocated off the hot path).
#[cold]
#[inline(never)]
fn make_trap(f: &CompiledFunction, check: u32, at_instruction: u64, at_progress: u64) -> Trap {
    Trap {
        function: f.name.clone(),
        check: f.checks[check as usize].display.to_string(),
        at_instruction,
        at_progress,
    }
}

/// Unchecked register-bank read.
///
/// Soundness: every register operand in a compiled function was
/// range-validated against its bank by `bytecode`'s lowering-time
/// validator, each frame's banks are clones of the validated `*_init`
/// vectors, and `CompiledProgram` cannot be built or mutated outside
/// this crate (its fields are `pub(crate)`).
#[inline(always)]
fn rd<T: Copy>(bank: &[T], r: u32) -> T {
    debug_assert!((r as usize) < bank.len());
    unsafe { *bank.get_unchecked(r as usize) }
}

/// Unchecked register-bank write (see [`rd`] for soundness).
#[inline(always)]
fn wr<T>(bank: &mut [T], r: u32, v: T) {
    debug_assert!((r as usize) < bank.len());
    unsafe { *bank.get_unchecked_mut(r as usize) = v }
}

impl<'a> Vm<'a> {
    /// Evaluates one fused inequality (wrapping arithmetic, opaque atoms
    /// tree-walked with division-by-zero-as-zero — exactly the
    /// tree-walker's `eval_linform`).
    fn eval_lincheck(
        &self,
        iregs: &[i64],
        fregs: &[f64],
        var_slots: &[(Ty, u32)],
        lc: &LinCheck,
    ) -> bool {
        match lc {
            LinCheck::Const(b) => *b,
            LinCheck::Dynamic { bound, base, terms } => {
                let mut acc = *base;
                for t in terms {
                    let prod: i64 = match &t.spec {
                        TermSpec::IVar(r) => iregs[*r as usize],
                        TermSpec::Prod(atoms) => atoms.iter().fold(1i64, |p, a| {
                            p.wrapping_mul(match a {
                                AtomSpec::I(r) => iregs[*r as usize],
                                AtomSpec::F(r) => fregs[*r as usize] as i64,
                                AtomSpec::Opaque(e) => eval_pure_slots(iregs, fregs, var_slots, e)
                                    .map_or(0, Value::as_int),
                            })
                        }),
                    };
                    acc = acc.wrapping_add(t.coeff.wrapping_mul(prod));
                }
                acc <= *bound
            }
        }
    }

    /// Executes one function. Returns a trap if one fired.
    #[allow(clippy::too_many_lines)]
    fn call(
        &mut self,
        fid: FuncId,
        args: &[CallArg],
        depth: usize,
    ) -> Result<Option<Trap>, RunError> {
        if depth > self.limits.max_call_depth {
            return Err(RunError::CallDepth);
        }
        let f = &self.prog.functions[fid.index()];
        let mut iregs = f.ireg_init.clone();
        let mut fregs = f.freg_init.clone();
        let mut arrays = vec![usize::MAX; f.arrays.len()];
        // bind parameters (coerced to the declared type's bank)
        for (p, a) in f.params.iter().zip(args.iter()) {
            match (p, a) {
                (Param::Scalar(v), CallArg::Scalar(val)) => match f.var_slots[v.index()] {
                    (Ty::Int, r) => iregs[r as usize] = val.as_int(),
                    (Ty::Real, r) => fregs[r as usize] = val.as_real(),
                },
                (Param::Array(slot), CallArg::Array(obj)) => {
                    arrays[slot.index()] = *obj;
                }
                _ => unreachable!("frontend checked call kinds"),
            }
        }
        // allocate local (non-parameter) arrays, bounds evaluated on entry
        for (i, spec) in f.arrays.iter().enumerate() {
            if arrays[i] != usize::MAX {
                continue;
            }
            let mut dims = Vec::with_capacity(spec.dims.len());
            let mut len: usize = 1;
            for (lo, hi) in &spec.dims {
                let lo = self.eval_entry(&iregs, &fregs, f, lo)?.as_int();
                let hi = self.eval_entry(&iregs, &fregs, f, hi)?.as_int();
                if hi < lo - 1 {
                    return Err(RunError::BadBounds {
                        function: f.name.clone(),
                        array: spec.name.clone(),
                    });
                }
                let extent = (hi - lo + 1).max(0) as usize;
                len = len.saturating_mul(extent);
                dims.push((lo, hi));
            }
            let (data_i, data_f) = match spec.ty {
                Ty::Int => (vec![0i64; len], Vec::new()),
                Ty::Real => (Vec::new(), vec![0f64; len]),
            };
            let idx = self.arrays.len();
            let (lo1, ext1) = dims
                .get(1)
                .map_or((0, 0), |&(lo, hi)| (lo, (hi - lo + 1).max(0) as usize));
            self.arrays.push(ArrayObj {
                lo0: dims[0].0,
                ext0: (dims[0].1 - dims[0].0 + 1).max(0) as usize,
                lo1,
                ext1,
                dims,
                data_i,
                data_f,
            });
            arrays[i] = idx;
        }

        // dispatch loop — instruction fetch, register-bank and
        // array-table accesses are unchecked; the lowering-time validator
        // (re-run by `run_compiled`) established every index, and control
        // flow can't run off the end of `code` (blocks end in
        // terminators, which never fall through)
        let code = f.code.as_slice();
        let mut pc = f.entry as usize;
        loop {
            debug_assert!(pc < code.len());
            let instr = unsafe { *code.get_unchecked(pc) };
            match instr {
                Instr::Charge { cost, progress } => {
                    self.instructions += cost;
                    if self.instructions + self.checks > self.limits.max_steps {
                        return Err(RunError::StepLimit);
                    }
                    if progress {
                        self.progress += 1;
                    }
                }
                Instr::ICopy { dst, src } => {
                    let v = rd(&iregs, src);
                    wr(&mut iregs, dst, v);
                }
                Instr::FCopy { dst, src } => {
                    let v = rd(&fregs, src);
                    wr(&mut fregs, dst, v);
                }
                Instr::ItoF { dst, src } => {
                    let v = rd(&iregs, src) as f64;
                    wr(&mut fregs, dst, v);
                }
                Instr::FtoI { dst, src } => {
                    let v = rd(&fregs, src) as i64;
                    wr(&mut iregs, dst, v);
                }
                Instr::INeg { dst, src } => {
                    let v = rd(&iregs, src).wrapping_neg();
                    wr(&mut iregs, dst, v);
                }
                Instr::INot { dst, src } => {
                    let v = i64::from(rd(&iregs, src) == 0);
                    wr(&mut iregs, dst, v);
                }
                Instr::FNeg { dst, src } => {
                    let v = -rd(&fregs, src);
                    wr(&mut fregs, dst, v);
                }
                Instr::IAdd { dst, lhs, rhs } => {
                    let v = rd(&iregs, lhs).wrapping_add(rd(&iregs, rhs));
                    wr(&mut iregs, dst, v);
                }
                Instr::ISub { dst, lhs, rhs } => {
                    let v = rd(&iregs, lhs).wrapping_sub(rd(&iregs, rhs));
                    wr(&mut iregs, dst, v);
                }
                Instr::IMul { dst, lhs, rhs } => {
                    let v = rd(&iregs, lhs).wrapping_mul(rd(&iregs, rhs));
                    wr(&mut iregs, dst, v);
                }
                Instr::IBin { op, dst, lhs, rhs } => {
                    match eval_int_binop(op, rd(&iregs, lhs), rd(&iregs, rhs)) {
                        Some(v) => wr(&mut iregs, dst, v),
                        None => {
                            return Err(RunError::DivisionByZero {
                                function: f.name.clone(),
                            })
                        }
                    }
                }
                Instr::FArith { op, dst, lhs, rhs } => {
                    let (a, b) = (rd(&fregs, lhs), rd(&fregs, rhs));
                    let v = match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => a / b,
                        BinOp::Mod => a % b,
                        BinOp::Min => a.min(b),
                        BinOp::Max => a.max(b),
                        _ => unreachable!("non-arithmetic op in FArith"),
                    };
                    wr(&mut fregs, dst, v);
                }
                Instr::FCmp { op, dst, lhs, rhs } => {
                    let (a, b) = (rd(&fregs, lhs), rd(&fregs, rhs));
                    let v = i64::from(match op {
                        BinOp::Lt => a < b,
                        BinOp::Le => a <= b,
                        BinOp::Gt => a > b,
                        BinOp::Ge => a >= b,
                        BinOp::Eq => a == b,
                        BinOp::Ne => a != b,
                        BinOp::And => a != 0.0 && b != 0.0,
                        BinOp::Or => a != 0.0 || b != 0.0,
                        _ => unreachable!("non-comparison op in FCmp"),
                    });
                    wr(&mut iregs, dst, v);
                }
                Instr::LoadI1 { dst, arr, idx } => {
                    let obj = &self.arrays[rd(&arrays, arr)];
                    let i = rd(&iregs, idx);
                    let off = i.wrapping_sub(obj.lo0) as usize;
                    if off >= obj.ext0 {
                        let (lo, hi) = obj.dims[0];
                        return Err(oob(f, arr, 0, i, lo, hi));
                    }
                    let v = obj.data_i[off];
                    wr(&mut iregs, dst, v);
                }
                Instr::LoadF1 { dst, arr, idx } => {
                    let obj = &self.arrays[rd(&arrays, arr)];
                    let i = rd(&iregs, idx);
                    let off = i.wrapping_sub(obj.lo0) as usize;
                    if off >= obj.ext0 {
                        let (lo, hi) = obj.dims[0];
                        return Err(oob(f, arr, 0, i, lo, hi));
                    }
                    let v = obj.data_f[off];
                    wr(&mut fregs, dst, v);
                }
                Instr::StoreI1 { arr, idx, src } => {
                    let v = rd(&iregs, src);
                    let i = rd(&iregs, idx);
                    let obj = &mut self.arrays[rd(&arrays, arr)];
                    let off = i.wrapping_sub(obj.lo0) as usize;
                    if off >= obj.ext0 {
                        let (lo, hi) = obj.dims[0];
                        return Err(oob(f, arr, 0, i, lo, hi));
                    }
                    obj.data_i[off] = v;
                }
                Instr::StoreF1 { arr, idx, src } => {
                    let v = rd(&fregs, src);
                    let i = rd(&iregs, idx);
                    let obj = &mut self.arrays[rd(&arrays, arr)];
                    let off = i.wrapping_sub(obj.lo0) as usize;
                    if off >= obj.ext0 {
                        let (lo, hi) = obj.dims[0];
                        return Err(oob(f, arr, 0, i, lo, hi));
                    }
                    obj.data_f[off] = v;
                }
                Instr::LoadI2 { dst, arr, i0, i1 } => {
                    let obj = &self.arrays[rd(&arrays, arr)];
                    let (a, b) = (rd(&iregs, i0), rd(&iregs, i1));
                    let off0 = a.wrapping_sub(obj.lo0) as usize;
                    if off0 >= obj.ext0 {
                        let (lo, hi) = obj.dims[0];
                        return Err(oob(f, arr, 0, a, lo, hi));
                    }
                    let off1 = b.wrapping_sub(obj.lo1) as usize;
                    if off1 >= obj.ext1 {
                        let (lo, hi) = obj.dims[1];
                        return Err(oob(f, arr, 1, b, lo, hi));
                    }
                    let v = obj.data_i[off0 * obj.ext1 + off1];
                    wr(&mut iregs, dst, v);
                }
                Instr::LoadF2 { dst, arr, i0, i1 } => {
                    let obj = &self.arrays[rd(&arrays, arr)];
                    let (a, b) = (rd(&iregs, i0), rd(&iregs, i1));
                    let off0 = a.wrapping_sub(obj.lo0) as usize;
                    if off0 >= obj.ext0 {
                        let (lo, hi) = obj.dims[0];
                        return Err(oob(f, arr, 0, a, lo, hi));
                    }
                    let off1 = b.wrapping_sub(obj.lo1) as usize;
                    if off1 >= obj.ext1 {
                        let (lo, hi) = obj.dims[1];
                        return Err(oob(f, arr, 1, b, lo, hi));
                    }
                    let v = obj.data_f[off0 * obj.ext1 + off1];
                    wr(&mut fregs, dst, v);
                }
                Instr::StoreI2 { arr, i0, i1, src } => {
                    let v = rd(&iregs, src);
                    let (a, b) = (rd(&iregs, i0), rd(&iregs, i1));
                    let obj = &mut self.arrays[rd(&arrays, arr)];
                    let off0 = a.wrapping_sub(obj.lo0) as usize;
                    if off0 >= obj.ext0 {
                        let (lo, hi) = obj.dims[0];
                        return Err(oob(f, arr, 0, a, lo, hi));
                    }
                    let off1 = b.wrapping_sub(obj.lo1) as usize;
                    if off1 >= obj.ext1 {
                        let (lo, hi) = obj.dims[1];
                        return Err(oob(f, arr, 1, b, lo, hi));
                    }
                    obj.data_i[off0 * obj.ext1 + off1] = v;
                }
                Instr::StoreF2 { arr, i0, i1, src } => {
                    let v = rd(&fregs, src);
                    let (a, b) = (rd(&iregs, i0), rd(&iregs, i1));
                    let obj = &mut self.arrays[rd(&arrays, arr)];
                    let off0 = a.wrapping_sub(obj.lo0) as usize;
                    if off0 >= obj.ext0 {
                        let (lo, hi) = obj.dims[0];
                        return Err(oob(f, arr, 0, a, lo, hi));
                    }
                    let off1 = b.wrapping_sub(obj.lo1) as usize;
                    if off1 >= obj.ext1 {
                        let (lo, hi) = obj.dims[1];
                        return Err(oob(f, arr, 1, b, lo, hi));
                    }
                    obj.data_f[off0 * obj.ext1 + off1] = v;
                }
                Instr::LoadIN {
                    dst,
                    arr,
                    idx,
                    rank,
                } => {
                    let g = arrays[arr as usize];
                    let off = element_offset(f, &iregs, &self.arrays[g], arr, idx, rank)?;
                    let v = self.arrays[g].data_i[off];
                    wr(&mut iregs, dst, v);
                }
                Instr::LoadFN {
                    dst,
                    arr,
                    idx,
                    rank,
                } => {
                    let g = arrays[arr as usize];
                    let off = element_offset(f, &iregs, &self.arrays[g], arr, idx, rank)?;
                    let v = self.arrays[g].data_f[off];
                    wr(&mut fregs, dst, v);
                }
                Instr::StoreIN {
                    arr,
                    idx,
                    rank,
                    src,
                } => {
                    let g = arrays[arr as usize];
                    let off = element_offset(f, &iregs, &self.arrays[g], arr, idx, rank)?;
                    self.arrays[g].data_i[off] = rd(&iregs, src);
                }
                Instr::StoreFN {
                    arr,
                    idx,
                    rank,
                    src,
                } => {
                    let g = arrays[arr as usize];
                    let off = element_offset(f, &iregs, &self.arrays[g], arr, idx, rank)?;
                    self.arrays[g].data_f[off] = rd(&fregs, src);
                }
                Instr::Check1 { fast } => {
                    debug_assert!((fast as usize) < f.fast_checks.len());
                    let fc = unsafe { f.fast_checks.get_unchecked(fast as usize) };
                    self.checks += 1;
                    if self.checks + self.instructions > self.limits.max_steps {
                        return Err(RunError::StepLimit);
                    }
                    let v = fc
                        .base
                        .wrapping_add(fc.coeff.wrapping_mul(rd(&iregs, fc.reg)));
                    if v > fc.bound {
                        return Ok(Some(make_trap(
                            f,
                            fc.check,
                            self.instructions,
                            self.progress,
                        )));
                    }
                    // fused charge of the following statement
                    if fc.charge != 0 {
                        self.instructions += fc.charge;
                        if self.instructions + self.checks > self.limits.max_steps {
                            return Err(RunError::StepLimit);
                        }
                        if fc.progress {
                            self.progress += 1;
                        }
                    }
                }
                Instr::Check2 { fast } => {
                    debug_assert!((fast as usize) < f.fast2_checks.len());
                    let fc = unsafe { f.fast2_checks.get_unchecked(fast as usize) };
                    self.checks += 1;
                    if self.checks + self.instructions > self.limits.max_steps {
                        return Err(RunError::StepLimit);
                    }
                    let v = fc
                        .base
                        .wrapping_add(fc.c0.wrapping_mul(rd(&iregs, fc.r0)))
                        .wrapping_add(fc.c1.wrapping_mul(rd(&iregs, fc.r1)));
                    if v > fc.bound {
                        return Ok(Some(make_trap(
                            f,
                            fc.check,
                            self.instructions,
                            self.progress,
                        )));
                    }
                    if fc.charge != 0 {
                        self.instructions += fc.charge;
                        if self.instructions + self.checks > self.limits.max_steps {
                            return Err(RunError::StepLimit);
                        }
                        if fc.progress {
                            self.progress += 1;
                        }
                    }
                }
                Instr::CheckN { fast } => {
                    debug_assert!((fast as usize) < f.fastn_checks.len());
                    let fc = unsafe { f.fastn_checks.get_unchecked(fast as usize) };
                    self.checks += 1;
                    if self.checks + self.instructions > self.limits.max_steps {
                        return Err(RunError::StepLimit);
                    }
                    let mut v = fc.base;
                    for &(r, c) in fc.terms.iter() {
                        v = v.wrapping_add(c.wrapping_mul(rd(&iregs, r)));
                    }
                    if v > fc.bound {
                        return Ok(Some(make_trap(
                            f,
                            fc.check,
                            self.instructions,
                            self.progress,
                        )));
                    }
                    if fc.charge != 0 {
                        self.instructions += fc.charge;
                        if self.instructions + self.checks > self.limits.max_steps {
                            return Err(RunError::StepLimit);
                        }
                        if fc.progress {
                            self.progress += 1;
                        }
                    }
                }
                Instr::Check { id } => {
                    let check = &f.checks[id as usize];
                    let mut suppressed = false;
                    for g in &check.guards {
                        self.guard_ops += 1;
                        if !self.eval_lincheck(&iregs, &fregs, &f.var_slots, g) {
                            suppressed = true; // guard failed: check not performed
                            break;
                        }
                    }
                    if !suppressed {
                        self.checks += 1;
                        if self.checks + self.instructions > self.limits.max_steps {
                            return Err(RunError::StepLimit);
                        }
                        if !self.eval_lincheck(&iregs, &fregs, &f.var_slots, &check.cond) {
                            return Ok(Some(make_trap(f, id, self.instructions, self.progress)));
                        }
                    }
                    // fused charge: the next statement runs whether the
                    // check passed or was guard-suppressed
                    if check.charge != 0 {
                        self.instructions += check.charge;
                        if self.instructions + self.checks > self.limits.max_steps {
                            return Err(RunError::StepLimit);
                        }
                        if check.progress {
                            self.progress += 1;
                        }
                    }
                }
                Instr::Trap { id } => {
                    return Ok(Some(Trap {
                        function: f.name.clone(),
                        check: format!("TRAP \"{}\"", f.traps[id as usize]),
                        at_instruction: self.instructions,
                        at_progress: self.progress,
                    }));
                }
                Instr::Call { id } => {
                    let spec = &f.calls[id as usize];
                    let call_args: Vec<CallArg> = spec
                        .args
                        .iter()
                        .map(|a| match a {
                            ArgSpec::I(r) => CallArg::Scalar(Value::Int(iregs[*r as usize])),
                            ArgSpec::F(r) => CallArg::Scalar(Value::Real(fregs[*r as usize])),
                            ArgSpec::Array(slot) => CallArg::Array(arrays[*slot as usize]),
                        })
                        .collect();
                    if let Some(trap) = self.call(spec.callee, &call_args, depth + 1)? {
                        return Ok(Some(trap));
                    }
                }
                Instr::EmitI { src } => self.output.push(Value::Int(rd(&iregs, src))),
                Instr::EmitF { src } => self.output.push(Value::Real(rd(&fregs, src))),
                Instr::Jump { target } => {
                    self.instructions += 1;
                    if self.instructions + self.checks > self.limits.max_steps {
                        return Err(RunError::StepLimit);
                    }
                    pc = target as usize;
                    continue;
                }
                Instr::Branch {
                    cond,
                    then_t,
                    else_t,
                } => {
                    pc = if rd(&iregs, cond) != 0 {
                        then_t as usize
                    } else {
                        else_t as usize
                    };
                    continue;
                }
                Instr::BrICmp {
                    op,
                    lhs,
                    rhs,
                    then_t,
                    else_t,
                } => {
                    let (a, b) = (rd(&iregs, lhs), rd(&iregs, rhs));
                    let taken = match op {
                        BinOp::Lt => a < b,
                        BinOp::Le => a <= b,
                        BinOp::Gt => a > b,
                        BinOp::Ge => a >= b,
                        BinOp::Eq => a == b,
                        BinOp::Ne => a != b,
                        _ => unreachable!("non-relational op in BrICmp"),
                    };
                    pc = if taken {
                        then_t as usize
                    } else {
                        else_t as usize
                    };
                    continue;
                }
                Instr::Return => {
                    self.instructions += 1;
                    if self.instructions + self.checks > self.limits.max_steps {
                        return Err(RunError::StepLimit);
                    }
                    return Ok(None);
                }
            }
            pc += 1;
        }
    }

    /// Expression evaluation at frame setup (adjustable array bounds).
    fn eval_entry(
        &self,
        iregs: &[i64],
        fregs: &[f64],
        f: &CompiledFunction,
        e: &Expr,
    ) -> Result<Value, RunError> {
        eval_pure_slots(iregs, fregs, &f.var_slots, e).ok_or_else(|| RunError::DivisionByZero {
            function: f.name.clone(),
        })
    }
}

/// Row-major element offset with per-dimension bounds checking over
/// pre-evaluated subscript registers (the rank-≥2 path).
fn element_offset(
    f: &CompiledFunction,
    iregs: &[i64],
    obj: &ArrayObj,
    arr: u32,
    idx: u32,
    rank: u32,
) -> Result<usize, RunError> {
    let mut offset: usize = 0;
    for d in 0..rank as usize {
        let i = iregs[f.idx_regs[idx as usize + d] as usize];
        let (lo, hi) = obj.dims[d];
        if i < lo || i > hi {
            return Err(oob(f, arr, d, i, lo, hi));
        }
        let extent = (hi - lo + 1) as usize;
        offset = offset * extent + (i - lo) as usize;
    }
    Ok(offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::lower;
    use crate::machine::run;
    use nascent_frontend::{compile, compile_with, CheckInsertion};

    fn both(src: &str) -> (Result<RunResult, RunError>, Result<RunResult, RunError>) {
        let p = compile(src).unwrap();
        let tree = run(&p, &Limits::default());
        let vm = run_compiled(&lower(&p), &Limits::default());
        (tree, vm)
    }

    fn assert_agree(src: &str) {
        let (tree, vm) = both(src);
        assert_eq!(tree, vm, "engines disagree on {src:?}");
    }

    #[test]
    fn straightline_and_loops_agree() {
        assert_agree("program p\n integer x\n x = 2 + 3 * 4\n print x\nend\n");
        assert_agree(
            "program p\n integer a(1:10)\n integer i, s\n s = 0\n do i = 1, 10\n a(i) = i\n enddo\n do i = 1, 10\n s = s + a(i)\n enddo\n print s\nend\n",
        );
        assert_agree(
            "program p\n real x\n integer i\n x = 1.0\n i = 0\n while (i < 3)\n x = x * 2.0\n i = i + 1\n endwhile\n print x\nend\n",
        );
    }

    #[test]
    fn mixed_type_programs_agree() {
        // int↔real conversions on assignment, loads, stores, calls,
        // print, and real-typed branch conditions
        assert_agree(
            "program p\n real a(1:8)\n integer i\n real s\n s = 0.0\n do i = 1, 8\n a(i) = i * 0.5\n s = s + a(i)\n enddo\n print s\nend\n",
        );
        assert_agree(
            "program p\n real x\n x = 7.9\n print -x\n print x / 0.0\n print x + 1\nend\n",
        );
        assert_agree(
            "program p\n real x\n integer i\n x = 2.5\n i = 0\n while (x < 40.0)\n x = x * 3.0\n i = i + 1\n endwhile\n print i\n print x\nend\n",
        );
        assert_agree("subroutine s(x)\n real x\n print x * 2.0\nend\nprogram p\n call s(3)\nend\n");
    }

    #[test]
    fn traps_agree_exactly() {
        for src in [
            "program p\n integer a(1:5)\n integer i\n i = 7\n a(i) = 1\nend\n",
            "program p\n integer a(3:5)\n integer i\n i = 1\n a(i) = 1\nend\n",
            "program p\n integer a(1:5)\n integer i\n i = 9\n print 1\n a(i) = 0\n print 2\nend\n",
        ] {
            let (tree, vm) = both(src);
            let t = tree.unwrap();
            let v = vm.unwrap();
            assert_eq!(t.trap, v.trap);
            assert_eq!(t.output, v.output);
            assert_eq!(t.dynamic_instructions, v.dynamic_instructions);
            assert_eq!(t.dynamic_progress, v.dynamic_progress);
            assert_eq!(t.dynamic_checks, v.dynamic_checks);
        }
    }

    #[test]
    fn calls_and_adjustable_arrays_agree() {
        assert_agree(
            "subroutine fill(n, a)\n integer n\n integer a(1:10)\n integer i\n do i = 1, n\n a(i) = i * i\n enddo\nend\nprogram p\n integer b(1:10)\n call fill(4, b)\n print b(4)\nend\n",
        );
        assert_agree(
            "subroutine s(n)\n integer n\n integer a(1:n)\n a(n) = 42\n print a(n)\nend\nprogram p\n call s(3)\nend\n",
        );
        assert_agree(
            "subroutine s(x)\n integer x\n x = 99\nend\nprogram p\n integer y\n y = 5\n call s(y)\n print y\nend\n",
        );
    }

    #[test]
    fn division_by_zero_agrees() {
        let (tree, vm) = both("program p\n integer x\n x = 0\n x = 1 / x\nend\n");
        assert_eq!(tree, vm);
        assert!(matches!(vm, Err(RunError::DivisionByZero { .. })));
    }

    #[test]
    fn step_limit_agrees() {
        let p =
            compile("program p\n integer i\n i = 0\n while (0 == 0)\n i = i + 1\n endwhile\nend\n")
                .unwrap();
        let limits = Limits {
            max_steps: 10_000,
            max_call_depth: 8,
        };
        assert_eq!(run(&p, &limits), Err(RunError::StepLimit));
        assert_eq!(run_compiled(&lower(&p), &limits), Err(RunError::StepLimit));
    }

    #[test]
    fn unchecked_violation_agrees() {
        let p = compile_with(
            "program p\n integer a(1:5)\n integer i\n i = 7\n a(i) = 1\nend\n",
            CheckInsertion::None,
        )
        .unwrap();
        let tree = run(&p, &Limits::default());
        let vm = run_compiled(&lower(&p), &Limits::default());
        assert_eq!(tree, vm);
        assert!(matches!(
            vm,
            Err(RunError::UndetectedViolation { index: 7, .. })
        ));
    }

    #[test]
    fn multi_dim_addressing_agrees() {
        assert_agree(
            "program p\n integer a(1:3, 1:4)\n integer i, j\n do i = 1, 3\n do j = 1, 4\n a(i, j) = 10 * i + j\n enddo\n enddo\n print a(2, 3)\n print a(3, 1)\nend\n",
        );
    }

    #[test]
    fn recursion_depth_agrees() {
        // `call` recursion to the depth limit needs more than the test
        // harness's default 2 MiB thread stack in unoptimized builds
        // (debug frames of the dispatch loop are large)
        std::thread::Builder::new()
            .stack_size(32 << 20)
            .spawn(|| {
                let p = compile(
                    "subroutine r(x)\n integer x\n call r(x)\nend\nprogram p\n call r(1)\nend\n",
                )
                .unwrap();
                let tree = run(&p, &Limits::default());
                let vm = run_compiled(&lower(&p), &Limits::default());
                assert_eq!(tree, vm);
            })
            .expect("spawn")
            .join()
            .expect("join");
    }
}
