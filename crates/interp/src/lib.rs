//! Instrumented interpreter for [`nascent_ir`] programs.
//!
//! The paper measures optimizations by *dynamic counts*: the number of
//! instructions and the number of range checks executed on the program's
//! standard input (Table 1), and the percentage of dynamic checks each
//! optimization removes (Tables 2 and 3). The authors obtained these counts
//! by translating Fortran to instrumented C; we interpret the IR directly
//! with an explicit cost model (see [`nascent_ir::Stmt::cost`]).
//!
//! Trap semantics follow §3 of the paper: a failing check stops execution
//! at that point. A *conditional* check (`Cond-check`) first evaluates its
//! guards and performs the check only if they all hold.
//!
//! Reaching an actual out-of-bounds array access is reported as
//! [`RunError::UndetectedViolation`]; a correct optimizer can never produce
//! one for a program whose naive version traps first.
//!
//! # Example
//!
//! ```
//! use nascent_interp::{run, Limits};
//!
//! let prog = nascent_frontend::compile(
//!     "program p\n integer a(1:5)\n integer i\n do i = 1, 5\n a(i) = i\n enddo\n print a(3)\nend\n",
//! ).unwrap();
//! let r = run(&prog, &Limits::default()).unwrap();
//! assert_eq!(r.output, vec![nascent_interp::Value::Int(3)]);
//! assert_eq!(r.dynamic_checks, 12); // 5 stores * 2 + 1 load * 2
//! assert!(r.trap.is_none());
//! ```

pub mod bytecode;
pub mod machine;
pub mod native;
pub mod vm;

pub use bytecode::{lower, CompiledProgram};
pub use machine::{run, run_traced, Limits, RunError, RunResult, TraceEvent, Trap, Value};
pub use native::run_native;
pub use vm::run_compiled;

/// Which execution engine to use for dynamic-count measurement.
///
/// All engines implement the same observable semantics (outputs, dynamic
/// instruction/check/guard counters, trap behavior); [`Engine::Vm`] lowers
/// the program to register bytecode once and dispatches a flat instruction
/// stream, which is substantially faster for the measurement harness.
/// [`Engine::Native`] goes all the way to machine code: the program is
/// translated to instrumented C (the paper's own §4 methodology),
/// compiled once per distinct program through `nascent-cback`'s
/// content-hash compile cache, and executed as a child process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The original tree-walking interpreter ([`machine::run`]).
    Tree,
    /// The register-bytecode VM ([`vm::run_compiled`] over [`bytecode::lower`]).
    #[default]
    Vm,
    /// The compiled-to-machine-code tier ([`native::run_native`] over the
    /// `nascent-cback` compile cache). Requires a C compiler on the host
    /// (`$CC`, falling back to `cc`).
    Native,
}

impl Engine {
    /// `tree` / `vm` / `native`, as used in flags, JSON, and metrics
    /// labels.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Tree => "tree",
            Engine::Vm => "vm",
            Engine::Native => "native",
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tree" => Ok(Engine::Tree),
            "vm" => Ok(Engine::Vm),
            "native" => Ok(Engine::Native),
            other => Err(format!(
                "unknown engine `{other}` (expected `tree`, `vm`, or `native`)"
            )),
        }
    }
}

/// Run `prog` under the selected [`Engine`].
///
/// Equivalent to [`run`] for [`Engine::Tree`]; for [`Engine::Vm`] the program
/// is lowered with [`lower`] and executed with [`run_compiled`]. Callers that
/// execute the same program many times should lower once and call
/// [`run_compiled`] directly to amortize the lowering cost.
/// [`Engine::Native`] amortizes automatically: the compiled binary is
/// cached process-wide by content hash, so re-runs just exec.
pub fn run_with_engine(
    prog: &nascent_ir::Program,
    limits: &Limits,
    engine: Engine,
) -> Result<RunResult, RunError> {
    let mut sp = nascent_obs::trace::span("interp", "engine");
    sp.attr("engine", engine.name());
    match engine {
        Engine::Tree => run(prog, limits),
        Engine::Vm => run_compiled(&lower(prog), limits),
        Engine::Native => run_native(prog, limits),
    }
}
