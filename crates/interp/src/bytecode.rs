//! Register bytecode: one-time lowering of [`nascent_ir`] functions into
//! flat, *type-specialized* instruction streams the [`vm`](crate::vm)
//! dispatch loop executes.
//!
//! Lowering resolves everything that the tree-walking interpreter
//! re-derives on every visit:
//!
//! * **slots** — scalar variables become indices into one of two typed
//!   register banks (`i64` and `f64`), chosen by declared type;
//!   integer/real literals are deduplicated into per-bank constant pools
//!   loaded once per frame; expression temporaries reuse a small
//!   per-statement scratch window in each bank;
//! * **types** — the static type of every subexpression is inferred at
//!   lowering time (the interpreter's promotion rules are static: see
//!   [`infer_ty`]), so the `Value` enum disappears from the hot path
//!   entirely.  Arithmetic lowers to `IAdd`/`FArith`/… on the right
//!   bank, with explicit `ItoF`/`FtoI` conversions exactly where the
//!   tree-walker's `coerce`/`as_int`/`as_real` calls sit;
//! * **cost** — every statement's dynamic-instruction cost
//!   ([`Stmt::cost`]) is folded into a single [`Instr::Charge`] emitted
//!   ahead of the statement's body (checks and compile-time traps cost 0
//!   and charge nothing — a zero charge can never newly exceed the step
//!   limit, so eliding it is behavior-preserving);
//! * **checks** — each canonical check becomes *one* instruction.
//!   No-guard checks whose terms are all integer variables take a fast
//!   path specialized by term count: [`Instr::Check1`] (one term, the
//!   overwhelmingly common shape), [`Instr::Check2`] (two terms — every
//!   bound check against an adjustable array extent), or
//!   [`Instr::CheckN`]; everything else goes through [`Instr::Check`]
//!   over a [`CompiledCheck`] with the `LinForm` walk flattened into
//!   coefficient/register pairs and the constant part folded at
//!   lowering time;
//! * **jumps** — block ids become direct code offsets, with the
//!   terminator's unit cost fused into [`Instr::Jump`]/[`Instr::Return`]
//!   and integer comparisons fused into the branch
//!   ([`Instr::BrICmp`]).
//!
//! Counter and trap semantics are bit-identical to the tree-walker; the
//! only known divergence is pathological and affects *errors* only: for a
//! multi-dimensional access the tree-walker interleaves per-dimension
//! bounds checking with subscript evaluation, while the VM evaluates all
//! subscripts before checking, so a program whose dimension-`d` subscript
//! is out of bounds *and* whose dimension-`d+1` subscript divides by zero
//! reports `DivisionByZero` instead of `UndetectedViolation`. Checked
//! compiles trap before either error can occur.

use std::collections::HashMap;

use nascent_ir::{
    Arg, Atom, BinOp, Check, CheckExpr, Expr, FuncId, Function, Param, Program, Stmt, Terminator,
    Ty, UnOp,
};

/// Index of a virtual register within one of a frame's typed banks.
pub type Reg = u32;

/// A flat VM instruction. `I`-prefixed operands index the frame's `i64`
/// bank, `F`-prefixed ones the `f64` bank; each bank is laid out
/// `[variables][constant pool][temporaries]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Charge `cost` dynamic instructions (step-limit checked) and, when
    /// `progress` holds, advance the comparable-execution-point counter.
    /// Emitted once per non-check statement and before `Branch`
    /// condition evaluation — unless the immediately preceding
    /// instruction of the same block is a check, in which case the
    /// charge is folded into it (see [`FastCheck::charge`] and
    /// [`CompiledCheck::charge`]); in fully checked code nearly every
    /// statement charge fuses away.
    Charge { cost: u64, progress: bool },
    /// `i[dst] = i[src]`.
    ICopy { dst: Reg, src: Reg },
    /// `f[dst] = f[src]`.
    FCopy { dst: Reg, src: Reg },
    /// `f[dst] = i[src] as f64` (the tree-walker's `as_real`).
    ItoF { dst: Reg, src: Reg },
    /// `i[dst] = f[src] as i64` (the tree-walker's `as_int`, truncating
    /// toward zero).
    FtoI { dst: Reg, src: Reg },
    /// `i[dst] = i[src].wrapping_neg()`.
    INeg { dst: Reg, src: Reg },
    /// `i[dst] = (i[src] == 0) as i64`.
    INot { dst: Reg, src: Reg },
    /// `f[dst] = -f[src]`.
    FNeg { dst: Reg, src: Reg },
    /// `i[dst] = i[lhs].wrapping_add(i[rhs])`.
    IAdd { dst: Reg, lhs: Reg, rhs: Reg },
    /// `i[dst] = i[lhs].wrapping_sub(i[rhs])`.
    ISub { dst: Reg, lhs: Reg, rhs: Reg },
    /// `i[dst] = i[lhs].wrapping_mul(i[rhs])`.
    IMul { dst: Reg, lhs: Reg, rhs: Reg },
    /// Remaining integer binary ops via [`nascent_ir::expr::eval_int_binop`]
    /// (division/remainder by zero errors the run).
    IBin {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    /// Real arithmetic `f[dst] = f[lhs] op f[rhs]` (never errors:
    /// division by zero follows IEEE).
    FArith {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    /// Real comparison/logic `i[dst] = (f[lhs] op f[rhs]) as i64`.
    FCmp {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    /// Rank-1 load `i[dst] = int_array[i[idx]]` (bounds-checked; an
    /// out-of-range subscript is an undetected violation).
    LoadI1 { dst: Reg, arr: u32, idx: Reg },
    /// Rank-1 load `f[dst] = real_array[i[idx]]`.
    LoadF1 { dst: Reg, arr: u32, idx: Reg },
    /// Rank-1 store `int_array[i[idx]] = i[src]`.
    StoreI1 { arr: u32, idx: Reg, src: Reg },
    /// Rank-1 store `real_array[i[idx]] = f[src]`.
    StoreF1 { arr: u32, idx: Reg, src: Reg },
    /// Rank-2 load `i[dst] = int_array[i[i0], i[i1]]` (both dimensions
    /// bounds-checked in declaration order, row-major addressing).
    LoadI2 {
        dst: Reg,
        arr: u32,
        i0: Reg,
        i1: Reg,
    },
    /// Rank-2 load from a real array.
    LoadF2 {
        dst: Reg,
        arr: u32,
        i0: Reg,
        i1: Reg,
    },
    /// Rank-2 store to an integer array.
    StoreI2 {
        arr: u32,
        i0: Reg,
        i1: Reg,
        src: Reg,
    },
    /// Rank-2 store to a real array.
    StoreF2 {
        arr: u32,
        i0: Reg,
        i1: Reg,
        src: Reg,
    },
    /// General load from an integer array; the `rank` subscript registers
    /// live at `idx_regs[idx..idx+rank]`.
    LoadIN {
        dst: Reg,
        arr: u32,
        idx: u32,
        rank: u32,
    },
    /// General load from a real array.
    LoadFN {
        dst: Reg,
        arr: u32,
        idx: u32,
        rank: u32,
    },
    /// General store to an integer array.
    StoreIN {
        arr: u32,
        idx: u32,
        rank: u32,
        src: Reg,
    },
    /// General store to a real array.
    StoreFN {
        arr: u32,
        idx: u32,
        rank: u32,
        src: Reg,
    },
    /// Fast path for the overwhelmingly common check shape: no guards,
    /// one integer-variable term (see [`FastCheck`]).
    Check1 { fast: u32 },
    /// Fast path for no-guard checks with exactly two integer-variable
    /// terms — the shape of every upper-bound check against an
    /// adjustable array extent (`i <= n`; see [`FastCheck2`]).
    Check2 { fast: u32 },
    /// Fast path for no-guard checks whose terms are all integer
    /// variables (three or more; see [`FastCheckN`]).
    CheckN { fast: u32 },
    /// Perform compiled check `id` (guards, counters, trap) — one
    /// instruction per canonical check.
    Check { id: u32 },
    /// Unconditional compile-time trap `id`.
    Trap { id: u32 },
    /// Call site `id` (arguments already evaluated into registers).
    Call { id: u32 },
    /// Append `i[src]` to the output stream as an integer value.
    EmitI { src: Reg },
    /// Append `f[src]` to the output stream as a real value.
    EmitF { src: Reg },
    /// Jump to code offset `target` (terminator cost 1 fused in).
    Jump { target: u32 },
    /// Branch on `i[cond] != 0` to a code offset (its charge is a
    /// separate preceding [`Instr::Charge`], before condition evaluation,
    /// matching the tree-walker's order of step-limit vs. division
    /// errors).
    Branch { cond: Reg, then_t: u32, else_t: u32 },
    /// Fused integer compare-and-branch: `if i[lhs] op i[rhs] then
    /// then_t else else_t` for a relational `op`.
    BrICmp {
        op: BinOp,
        lhs: Reg,
        rhs: Reg,
        then_t: u32,
        else_t: u32,
    },
    /// Return from the function (terminator cost 1 fused in).
    Return,
}

/// The fused evaluator for a no-guard single-integer-variable check:
/// trap iff `base + coeff·i[reg] > bound` (wrapping arithmetic, exactly
/// the tree-walker's `eval_linform`).
#[derive(Debug, Clone, PartialEq)]
pub struct FastCheck {
    /// The (integer-bank) variable register.
    pub reg: Reg,
    /// Its coefficient.
    pub coeff: i64,
    /// The form's folded constant part.
    pub base: i64,
    /// The range constant.
    pub bound: i64,
    /// Index into [`CompiledFunction::checks`] for the trap display.
    pub check: u32,
    /// Fused [`Instr::Charge`] of the *following* statement (0 = none):
    /// applied after the check completes without trapping, preserving the
    /// tree-walker's exact counter/step-limit ordering while saving a
    /// dispatch.
    pub charge: u64,
    /// The fused charge's progress flag.
    pub progress: bool,
}

/// The fused evaluator for a no-guard two-integer-variable check: trap
/// iff `base + c0·i[r0] + c1·i[r1] > bound` (wrapping arithmetic). This
/// is the shape of every bound check against an adjustable array extent
/// (subscript variable vs. extent variable).
#[derive(Debug, Clone, PartialEq)]
pub struct FastCheck2 {
    /// First term's variable register / coefficient.
    pub r0: Reg,
    /// First coefficient.
    pub c0: i64,
    /// Second term's variable register.
    pub r1: Reg,
    /// Second coefficient.
    pub c1: i64,
    /// The form's folded constant part.
    pub base: i64,
    /// The range constant.
    pub bound: i64,
    /// Index into [`CompiledFunction::checks`] for the trap display.
    pub check: u32,
    /// Fused charge of the following statement (0 = none).
    pub charge: u64,
    /// The fused charge's progress flag.
    pub progress: bool,
}

/// The fused evaluator for a no-guard check whose terms are all integer
/// variables (three or more): trap iff
/// `base + Σ cᵢ·i[rᵢ] > bound` (wrapping arithmetic).
#[derive(Debug, Clone, PartialEq)]
pub struct FastCheckN {
    /// `(register, coefficient)` summands.
    pub terms: Box<[(Reg, i64)]>,
    /// The form's folded constant part.
    pub base: i64,
    /// The range constant.
    pub bound: i64,
    /// Index into [`CompiledFunction::checks`] for the trap display.
    pub check: u32,
    /// Fused charge of the following statement (0 = none).
    pub charge: u64,
    /// The fused charge's progress flag.
    pub progress: bool,
}

/// A multiplicative factor of a compiled check term.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomSpec {
    /// An integer-bank variable register.
    I(Reg),
    /// A real-bank variable register (truncated toward zero, like the
    /// tree-walker's `as_int`).
    F(Reg),
    /// An opaque subexpression, tree-evaluated against the register
    /// banks (division by zero yields 0, as in the tree-walker).
    Opaque(Expr),
}

/// How one `coeff · term` of a compiled check is evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum TermSpec {
    /// `coeff · i[r]` — the overwhelmingly common case.
    IVar(Reg),
    /// `coeff · Π atom` for anything else.
    Prod(Vec<AtomSpec>),
}

/// One `coeff · term` summand.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTerm {
    /// The coefficient.
    pub coeff: i64,
    /// The term evaluator.
    pub spec: TermSpec,
}

/// A canonical inequality `Σ coeffᵢ·termᵢ + base <= bound`, pre-resolved
/// to registers and constant-folded at lowering time.
#[derive(Debug, Clone, PartialEq)]
pub enum LinCheck {
    /// The inequality is a compile-time constant.
    Const(bool),
    /// Evaluate the flattened form (wrapping arithmetic, like the
    /// tree-walker's `eval_linform`).
    Dynamic {
        /// The range constant.
        bound: i64,
        /// The form's folded constant part.
        base: i64,
        /// The symbolic summands, in canonical order.
        terms: Vec<CompiledTerm>,
    },
}

/// A fused check: guards, the check proper, and the source check kept for
/// rendering the trap message (materialized only when the check fires).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCheck {
    /// Guard inequalities, evaluated in order; a failing guard
    /// suppresses the check.
    pub guards: Vec<LinCheck>,
    /// The check proper.
    pub cond: LinCheck,
    /// The source check, for `Trap::check` display.
    pub display: Check,
    /// Fused charge of the following statement (0 = none), as in
    /// [`FastCheck::charge`]. Applied whether the check passed or was
    /// guard-suppressed — either way the next statement executes.
    pub charge: u64,
    /// The fused charge's progress flag.
    pub progress: bool,
}

/// One argument of a compiled call site.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgSpec {
    /// Integer scalar already evaluated into `i[reg]`.
    I(Reg),
    /// Real scalar already evaluated into `f[reg]`.
    F(Reg),
    /// Caller array slot passed by reference.
    Array(u32),
}

/// A compiled call site.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSpec {
    /// The callee.
    pub callee: FuncId,
    /// Arguments, in call order.
    pub args: Vec<ArgSpec>,
}

/// Array metadata the VM needs at frame setup (declared bounds stay
/// symbolic — Fortran adjustable arrays are evaluated on entry).
#[derive(Debug, Clone, PartialEq)]
pub struct ArraySpec {
    /// Source-level name (for error messages).
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// `(lower, upper)` declared bounds per dimension.
    pub dims: Vec<(Expr, Expr)>,
}

/// One function lowered to bytecode.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFunction {
    /// Source-level name (error/trap messages only).
    pub(crate) name: String,
    /// Formal parameters.
    pub(crate) params: Vec<Param>,
    /// For each IR variable: its declared type and its slot in the
    /// corresponding register bank. Used for parameter binding and for
    /// the residual tree evaluations (opaque check atoms, adjustable
    /// array bounds).
    pub(crate) var_slots: Vec<(Ty, Reg)>,
    /// Array table.
    pub(crate) arrays: Vec<ArraySpec>,
    /// Initial `i64` bank: variable zeros, the integer constant pool,
    /// zeroed temporaries. Cloned (memcpy) per frame.
    pub(crate) ireg_init: Vec<i64>,
    /// Initial `f64` bank.
    pub(crate) freg_init: Vec<f64>,
    /// The instruction stream.
    pub(crate) code: Vec<Instr>,
    /// Code offset of the entry block.
    pub(crate) entry: u32,
    /// Subscript register lists for the rank-≥2 load/store forms.
    pub(crate) idx_regs: Vec<Reg>,
    /// Compiled checks, indexed by [`Instr::Check`] (and referenced by
    /// [`FastCheck::check`] for display).
    pub(crate) checks: Vec<CompiledCheck>,
    /// Fast-path checks, indexed by [`Instr::Check1`].
    pub(crate) fast_checks: Vec<FastCheck>,
    /// Two-term fast-path checks, indexed by [`Instr::Check2`].
    pub(crate) fast2_checks: Vec<FastCheck2>,
    /// All-variable fast-path checks, indexed by [`Instr::CheckN`].
    pub(crate) fastn_checks: Vec<FastCheckN>,
    /// Compiled call sites, indexed by [`Instr::Call`].
    pub(crate) calls: Vec<CallSpec>,
    /// Trap messages, indexed by [`Instr::Trap`].
    pub(crate) traps: Vec<String>,
}

/// A whole program lowered to bytecode.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// All functions; [`FuncId`] indexes into this vector.
    pub(crate) functions: Vec<CompiledFunction>,
    /// The entry function.
    pub(crate) main: FuncId,
}

/// Lowers a program into bytecode. Pure function of the IR: lower once,
/// run many times.
pub fn lower(prog: &Program) -> CompiledProgram {
    CompiledProgram {
        functions: prog.functions.iter().map(lower_function).collect(),
        main: prog.main,
    }
}

/// The static type of an expression's runtime value.
///
/// This mirrors the interpreter's promotion rules exactly: variables
/// always hold their declared type (assignments, loads and parameter
/// binding coerce), comparisons and logic produce integers, arithmetic
/// is real iff either operand is real. The lowering uses it to pick the
/// register bank for every subexpression.
fn infer_ty(e: &Expr, var_tys: &[Ty]) -> Ty {
    match e {
        Expr::IntConst(_) => Ty::Int,
        Expr::RealConst(_) => Ty::Real,
        Expr::Var(v) => var_tys[v.index()],
        Expr::Unary(UnOp::Neg, inner) => infer_ty(inner, var_tys),
        Expr::Unary(UnOp::Not, _) => Ty::Int,
        Expr::Binary(op, l, r) => {
            if is_cmp_or_logic(*op) {
                Ty::Int
            } else if infer_ty(l, var_tys) == Ty::Real || infer_ty(r, var_tys) == Ty::Real {
                Ty::Real
            } else {
                Ty::Int
            }
        }
    }
}

/// Operators that produce a 0/1 integer regardless of operand types.
fn is_cmp_or_logic(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::Eq
            | BinOp::Ne
            | BinOp::And
            | BinOp::Or
    )
}

/// Relational operators eligible for branch fusion.
fn is_relational(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
    )
}

/// Collects every literal in the expression into the per-bank pools.
///
/// Integer literals are *also* pooled into the real bank (as their
/// promoted `f64` value) so that a literal used in a real context — e.g.
/// `x + 1` with `x` real — resolves to a pooled constant at lowering
/// time instead of emitting an `ItoF` on every evaluation.
fn collect_consts(
    e: &Expr,
    ipool: &mut Vec<i64>,
    imap: &mut HashMap<i64, u32>,
    fpool: &mut Vec<f64>,
    fmap: &mut HashMap<u64, u32>,
) {
    match e {
        Expr::IntConst(v) => {
            imap.entry(*v).or_insert_with(|| {
                ipool.push(*v);
                (ipool.len() - 1) as u32
            });
            let promoted = *v as f64;
            fmap.entry(promoted.to_bits()).or_insert_with(|| {
                fpool.push(promoted);
                (fpool.len() - 1) as u32
            });
        }
        Expr::RealConst(r) => {
            fmap.entry(r.value().to_bits()).or_insert_with(|| {
                fpool.push(r.value());
                (fpool.len() - 1) as u32
            });
        }
        Expr::Var(_) => {}
        Expr::Unary(_, inner) => collect_consts(inner, ipool, imap, fpool, fmap),
        Expr::Binary(_, l, r) => {
            collect_consts(l, ipool, imap, fpool, fmap);
            collect_consts(r, ipool, imap, fpool, fmap);
        }
    }
}

struct Lowerer<'a> {
    f: &'a Function,
    var_tys: Vec<Ty>,
    var_slots: Vec<(Ty, Reg)>,
    n_ivars: u32,
    n_fvars: u32,
    /// Constant pools, in first-appearance order.
    ipool: Vec<i64>,
    fpool: Vec<f64>,
    imap: HashMap<i64, u32>,
    fmap: HashMap<u64, u32>,
    code: Vec<Instr>,
    idx_regs: Vec<Reg>,
    checks: Vec<CompiledCheck>,
    fast_checks: Vec<FastCheck>,
    fast2_checks: Vec<FastCheck2>,
    fastn_checks: Vec<FastCheckN>,
    calls: Vec<CallSpec>,
    traps: Vec<String>,
    /// Next free temporaries (reset per statement), counted from the
    /// bank's temp base.
    next_itemp: u32,
    next_ftemp: u32,
    max_itemps: u32,
    max_ftemps: u32,
    /// Code offset where the current basic block began. Charge fusion
    /// must not reach across this boundary: a jump entering the block
    /// would skip a charge folded into the previous block's last check.
    block_start: usize,
}

impl<'a> Lowerer<'a> {
    fn itemp_base(&self) -> u32 {
        self.n_ivars + self.ipool.len() as u32
    }

    fn ftemp_base(&self) -> u32 {
        self.n_fvars + self.fpool.len() as u32
    }

    fn reset_temps(&mut self) {
        self.next_itemp = 0;
        self.next_ftemp = 0;
    }

    fn alloc_temp(&mut self, ty: Ty) -> Reg {
        match ty {
            Ty::Int => {
                let r = self.itemp_base() + self.next_itemp;
                self.next_itemp += 1;
                self.max_itemps = self.max_itemps.max(self.next_itemp);
                r
            }
            Ty::Real => {
                let r = self.ftemp_base() + self.next_ftemp;
                self.next_ftemp += 1;
                self.max_ftemps = self.max_ftemps.max(self.next_ftemp);
                r
            }
        }
    }

    fn iconst(&self, v: i64) -> Reg {
        self.n_ivars + self.imap[&v]
    }

    fn fconst(&self, bits: u64) -> Reg {
        self.n_fvars + self.fmap[&bits]
    }

    fn ty_of(&self, e: &Expr) -> Ty {
        infer_ty(e, &self.var_tys)
    }

    /// Emits a statement charge, folding it into an immediately
    /// preceding check of the same block when possible (the dominant
    /// pattern in checked code: `CHECK …; stmt` lowers to one fused
    /// check instruction plus the statement body).
    fn push_charge(&mut self, cost: u64, progress: bool) {
        if self.code.len() > self.block_start {
            match self.code.last() {
                Some(Instr::Check1 { fast }) => {
                    let fc = &mut self.fast_checks[*fast as usize];
                    if fc.charge == 0 {
                        fc.charge = cost;
                        fc.progress = progress;
                        return;
                    }
                }
                Some(Instr::Check2 { fast }) => {
                    let fc = &mut self.fast2_checks[*fast as usize];
                    if fc.charge == 0 {
                        fc.charge = cost;
                        fc.progress = progress;
                        return;
                    }
                }
                Some(Instr::CheckN { fast }) => {
                    let fc = &mut self.fastn_checks[*fast as usize];
                    if fc.charge == 0 {
                        fc.charge = cost;
                        fc.progress = progress;
                        return;
                    }
                }
                Some(Instr::Check { id }) => {
                    let c = &mut self.checks[*id as usize];
                    if c.charge == 0 {
                        c.charge = cost;
                        c.progress = progress;
                        return;
                    }
                }
                _ => {}
            }
        }
        self.code.push(Instr::Charge { cost, progress });
    }

    /// Lowers an expression into its *natural* bank (per [`infer_ty`]);
    /// returns the register holding its value. With `dst` (which must be
    /// a slot in the natural bank), the value lands in `dst`, emitting a
    /// copy when the expression is a bare variable or literal.
    fn lower_expr(&mut self, e: &Expr, dst: Option<Reg>) -> Reg {
        match e {
            Expr::IntConst(v) => {
                let src = self.iconst(*v);
                self.place(Ty::Int, src, dst)
            }
            Expr::RealConst(r) => {
                let src = self.fconst(r.value().to_bits());
                self.place(Ty::Real, src, dst)
            }
            Expr::Var(v) => {
                let (ty, slot) = self.var_slots[v.index()];
                self.place(ty, slot, dst)
            }
            Expr::Unary(UnOp::Neg, inner) => {
                let ty = self.ty_of(inner);
                let src = self.lower_expr(inner, None);
                let d = dst.unwrap_or_else(|| self.alloc_temp(ty));
                self.code.push(match ty {
                    Ty::Int => Instr::INeg { dst: d, src },
                    Ty::Real => Instr::FNeg { dst: d, src },
                });
                d
            }
            Expr::Unary(UnOp::Not, inner) => {
                // `Not` truncates a real operand toward zero first
                // (`as_int() == 0` in the tree-walker)
                let src = self.lower_as(Ty::Int, inner);
                let d = dst.unwrap_or_else(|| self.alloc_temp(Ty::Int));
                self.code.push(Instr::INot { dst: d, src });
                d
            }
            Expr::Binary(op, l, r) => {
                let promote = self.ty_of(l) == Ty::Real || self.ty_of(r) == Ty::Real;
                if is_cmp_or_logic(*op) {
                    let d = dst.unwrap_or_else(|| self.alloc_temp(Ty::Int));
                    if promote {
                        let lhs = self.lower_as(Ty::Real, l);
                        let rhs = self.lower_as(Ty::Real, r);
                        self.code.push(Instr::FCmp {
                            op: *op,
                            dst: d,
                            lhs,
                            rhs,
                        });
                    } else {
                        let lhs = self.lower_expr(l, None);
                        let rhs = self.lower_expr(r, None);
                        self.code.push(Instr::IBin {
                            op: *op,
                            dst: d,
                            lhs,
                            rhs,
                        });
                    }
                    d
                } else if promote {
                    let lhs = self.lower_as(Ty::Real, l);
                    let rhs = self.lower_as(Ty::Real, r);
                    let d = dst.unwrap_or_else(|| self.alloc_temp(Ty::Real));
                    self.code.push(Instr::FArith {
                        op: *op,
                        dst: d,
                        lhs,
                        rhs,
                    });
                    d
                } else {
                    let lhs = self.lower_expr(l, None);
                    let rhs = self.lower_expr(r, None);
                    let d = dst.unwrap_or_else(|| self.alloc_temp(Ty::Int));
                    self.code.push(match op {
                        BinOp::Add => Instr::IAdd { dst: d, lhs, rhs },
                        BinOp::Sub => Instr::ISub { dst: d, lhs, rhs },
                        BinOp::Mul => Instr::IMul { dst: d, lhs, rhs },
                        _ => Instr::IBin {
                            op: *op,
                            dst: d,
                            lhs,
                            rhs,
                        },
                    });
                    d
                }
            }
        }
    }

    /// Lowers an expression and converts it into the `want` bank if its
    /// natural type differs (`ItoF`/`FtoI`, matching the tree-walker's
    /// `as_real`/`as_int`).
    fn lower_as(&mut self, want: Ty, e: &Expr) -> Reg {
        // integer literal in a real context: the promoted value is
        // already pooled in the real bank (see `collect_consts`)
        if let (Ty::Real, Expr::IntConst(v)) = (want, e) {
            return self.fconst((*v as f64).to_bits());
        }
        let natural = self.ty_of(e);
        let src = self.lower_expr(e, None);
        if natural == want {
            return src;
        }
        let d = self.alloc_temp(want);
        self.code.push(match want {
            Ty::Int => Instr::FtoI { dst: d, src },
            Ty::Real => Instr::ItoF { dst: d, src },
        });
        d
    }

    fn place(&mut self, ty: Ty, src: Reg, dst: Option<Reg>) -> Reg {
        match dst {
            Some(d) if d != src => {
                self.code.push(match ty {
                    Ty::Int => Instr::ICopy { dst: d, src },
                    Ty::Real => Instr::FCopy { dst: d, src },
                });
                d
            }
            _ => src,
        }
    }

    /// Lowers the value of an assignment into `var`'s slot, fusing the
    /// coercion when the static type already matches.
    fn lower_assign(&mut self, var: usize, value: &Expr) {
        let (vty, slot) = self.var_slots[var];
        if self.ty_of(value) == vty {
            self.lower_expr(value, Some(slot));
        } else {
            let src = self.lower_expr(value, None);
            self.code.push(match vty {
                Ty::Int => Instr::FtoI { dst: slot, src },
                Ty::Real => Instr::ItoF { dst: slot, src },
            });
        }
    }

    /// Lowers subscripts into integer registers (truncating real-typed
    /// subscripts toward zero, like the tree-walker's `as_int`).
    fn lower_index_regs(&mut self, index: &[Expr]) -> Vec<Reg> {
        index.iter().map(|e| self.lower_as(Ty::Int, e)).collect()
    }

    fn lower_stmt(&mut self, stmt: &Stmt) {
        self.reset_temps();
        match stmt {
            Stmt::Check(_) | Stmt::Trap { .. } => {} // cost 0: no charge
            _ => self.push_charge(stmt.cost(), true),
        }
        match stmt {
            Stmt::Assign { var, value } => self.lower_assign(var.index(), value),
            Stmt::Load { var, array, index } => {
                let regs = self.lower_index_regs(index);
                // the loaded cell is coerced to the *variable's* type
                // (`v.coerce(var_ty)` in the tree-walker); the array's
                // element type decides which bank holds the cell
                let ety = self.f.arrays[array.index()].ty;
                let (vty, vslot) = self.var_slots[var.index()];
                let dst = if ety == vty {
                    vslot
                } else {
                    self.alloc_temp(ety)
                };
                self.push_access(*array, &regs, ety, AccessKind::Load { dst });
                if ety != vty {
                    self.code.push(match vty {
                        Ty::Int => Instr::FtoI {
                            dst: vslot,
                            src: dst,
                        },
                        Ty::Real => Instr::ItoF {
                            dst: vslot,
                            src: dst,
                        },
                    });
                }
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                // value first, then subscripts — the tree-walker's order,
                // so a division by zero in the value beats one in an index
                let ety = self.f.arrays[array.index()].ty;
                let src = self.lower_as(ety, value);
                let regs = self.lower_index_regs(index);
                self.push_access(*array, &regs, ety, AccessKind::Store { src });
            }
            Stmt::Check(check) => {
                let compiled = compile_check(check, &self.var_slots);
                let id = self.checks.len() as u32;
                // fast paths: no guards, all terms integer variables
                if let (true, LinCheck::Dynamic { bound, base, terms }) =
                    (compiled.guards.is_empty(), &compiled.cond)
                {
                    let ivar = |t: &CompiledTerm| match t.spec {
                        TermSpec::IVar(r) => Some((r, t.coeff)),
                        TermSpec::Prod(_) => None,
                    };
                    match terms.as_slice() {
                        [t0] => {
                            if let Some((reg, coeff)) = ivar(t0) {
                                let fast = self.fast_checks.len() as u32;
                                self.fast_checks.push(FastCheck {
                                    reg,
                                    coeff,
                                    base: *base,
                                    bound: *bound,
                                    check: id,
                                    charge: 0,
                                    progress: false,
                                });
                                self.checks.push(compiled);
                                self.code.push(Instr::Check1 { fast });
                                return;
                            }
                        }
                        [t0, t1] => {
                            if let (Some((r0, c0)), Some((r1, c1))) = (ivar(t0), ivar(t1)) {
                                let fast = self.fast2_checks.len() as u32;
                                self.fast2_checks.push(FastCheck2 {
                                    r0,
                                    c0,
                                    r1,
                                    c1,
                                    base: *base,
                                    bound: *bound,
                                    check: id,
                                    charge: 0,
                                    progress: false,
                                });
                                self.checks.push(compiled);
                                self.code.push(Instr::Check2 { fast });
                                return;
                            }
                        }
                        ts => {
                            if let Some(pairs) = ts.iter().map(ivar).collect::<Option<Vec<_>>>() {
                                let fast = self.fastn_checks.len() as u32;
                                self.fastn_checks.push(FastCheckN {
                                    terms: pairs.into_boxed_slice(),
                                    base: *base,
                                    bound: *bound,
                                    check: id,
                                    charge: 0,
                                    progress: false,
                                });
                                self.checks.push(compiled);
                                self.code.push(Instr::CheckN { fast });
                                return;
                            }
                        }
                    }
                }
                self.checks.push(compiled);
                self.code.push(Instr::Check { id });
            }
            Stmt::Trap { message } => {
                let id = self.traps.len() as u32;
                self.traps.push(message.clone());
                self.code.push(Instr::Trap { id });
            }
            Stmt::Call { callee, args } => {
                let specs: Vec<ArgSpec> = args
                    .iter()
                    .map(|a| match a {
                        Arg::Scalar(e) => {
                            let ty = self.ty_of(e);
                            let r = self.lower_expr(e, None);
                            match ty {
                                Ty::Int => ArgSpec::I(r),
                                Ty::Real => ArgSpec::F(r),
                            }
                        }
                        Arg::Array(id) => ArgSpec::Array(id.0),
                    })
                    .collect();
                let id = self.calls.len() as u32;
                self.calls.push(CallSpec {
                    callee: *callee,
                    args: specs,
                });
                self.code.push(Instr::Call { id });
            }
            Stmt::Emit(e) => {
                let ty = self.ty_of(e);
                let src = self.lower_expr(e, None);
                self.code.push(match ty {
                    Ty::Int => Instr::EmitI { src },
                    Ty::Real => Instr::EmitF { src },
                });
            }
        }
    }

    /// Emits the element access instruction: the rank-1 forms carry the
    /// subscript register inline, rank-≥2 goes through `idx_regs`.
    fn push_access(&mut self, array: nascent_ir::ArrayId, regs: &[Reg], ety: Ty, kind: AccessKind) {
        let arr = array.0;
        if let [i0, i1] = regs {
            self.code.push(match (ety, kind) {
                (Ty::Int, AccessKind::Load { dst }) => Instr::LoadI2 {
                    dst,
                    arr,
                    i0: *i0,
                    i1: *i1,
                },
                (Ty::Real, AccessKind::Load { dst }) => Instr::LoadF2 {
                    dst,
                    arr,
                    i0: *i0,
                    i1: *i1,
                },
                (Ty::Int, AccessKind::Store { src }) => Instr::StoreI2 {
                    arr,
                    i0: *i0,
                    i1: *i1,
                    src,
                },
                (Ty::Real, AccessKind::Store { src }) => Instr::StoreF2 {
                    arr,
                    i0: *i0,
                    i1: *i1,
                    src,
                },
            });
            return;
        }
        if let [idx] = regs {
            self.code.push(match (ety, kind) {
                (Ty::Int, AccessKind::Load { dst }) => Instr::LoadI1 {
                    dst,
                    arr,
                    idx: *idx,
                },
                (Ty::Real, AccessKind::Load { dst }) => Instr::LoadF1 {
                    dst,
                    arr,
                    idx: *idx,
                },
                (Ty::Int, AccessKind::Store { src }) => Instr::StoreI1 {
                    arr,
                    idx: *idx,
                    src,
                },
                (Ty::Real, AccessKind::Store { src }) => Instr::StoreF1 {
                    arr,
                    idx: *idx,
                    src,
                },
            });
            return;
        }
        let idx = self.idx_regs.len() as u32;
        self.idx_regs.extend_from_slice(regs);
        let rank = regs.len() as u32;
        self.code.push(match (ety, kind) {
            (Ty::Int, AccessKind::Load { dst }) => Instr::LoadIN {
                dst,
                arr,
                idx,
                rank,
            },
            (Ty::Real, AccessKind::Load { dst }) => Instr::LoadFN {
                dst,
                arr,
                idx,
                rank,
            },
            (Ty::Int, AccessKind::Store { src }) => Instr::StoreIN {
                arr,
                idx,
                rank,
                src,
            },
            (Ty::Real, AccessKind::Store { src }) => Instr::StoreFN {
                arr,
                idx,
                rank,
                src,
            },
        });
    }
}

#[derive(Clone, Copy)]
enum AccessKind {
    Load { dst: Reg },
    Store { src: Reg },
}

/// Compiles one canonical inequality into its fused evaluator.
fn compile_check_expr(ce: &CheckExpr, var_slots: &[(Ty, Reg)]) -> LinCheck {
    let form = ce.form();
    if form.is_constant() {
        return LinCheck::Const(form.constant_part() <= ce.bound());
    }
    let terms = form
        .terms()
        .map(|(term, coeff)| {
            let atoms = term.atoms();
            let spec = match atoms {
                [Atom::Var(v)] if var_slots[v.index()].0 == Ty::Int => {
                    TermSpec::IVar(var_slots[v.index()].1)
                }
                _ => TermSpec::Prod(
                    atoms
                        .iter()
                        .map(|a| match a {
                            Atom::Var(v) => match var_slots[v.index()] {
                                (Ty::Int, r) => AtomSpec::I(r),
                                (Ty::Real, r) => AtomSpec::F(r),
                            },
                            Atom::Opaque(e) => AtomSpec::Opaque(e.clone()),
                        })
                        .collect(),
                ),
            };
            CompiledTerm { coeff, spec }
        })
        .collect();
    LinCheck::Dynamic {
        bound: ce.bound(),
        base: form.constant_part(),
        terms,
    }
}

fn compile_check(check: &Check, var_slots: &[(Ty, Reg)]) -> CompiledCheck {
    CompiledCheck {
        guards: check
            .guards
            .iter()
            .map(|g| compile_check_expr(g, var_slots))
            .collect(),
        cond: compile_check_expr(&check.cond, var_slots),
        display: check.clone(),
        charge: 0,
        progress: false,
    }
}

fn lower_function(f: &Function) -> CompiledFunction {
    let var_tys: Vec<Ty> = f.vars.iter().map(|v| v.ty).collect();
    // assign bank slots in declaration order
    let mut n_ivars = 0u32;
    let mut n_fvars = 0u32;
    let var_slots: Vec<(Ty, Reg)> = var_tys
        .iter()
        .map(|ty| match ty {
            Ty::Int => {
                let r = n_ivars;
                n_ivars += 1;
                (Ty::Int, r)
            }
            Ty::Real => {
                let r = n_fvars;
                n_fvars += 1;
                (Ty::Real, r)
            }
        })
        .collect();

    // pass 1: constant pools over every expression the code evaluates
    let mut ipool = Vec::new();
    let mut fpool = Vec::new();
    let mut imap = HashMap::new();
    let mut fmap = HashMap::new();
    {
        let mut cc = |e: &Expr| collect_consts(e, &mut ipool, &mut imap, &mut fpool, &mut fmap);
        for b in &f.blocks {
            for s in &b.stmts {
                match s {
                    Stmt::Assign { value, .. } => cc(value),
                    Stmt::Load { index, .. } => {
                        for e in index {
                            cc(e);
                        }
                    }
                    Stmt::Store { index, value, .. } => {
                        cc(value);
                        for e in index {
                            cc(e);
                        }
                    }
                    Stmt::Call { args, .. } => {
                        for a in args {
                            if let Arg::Scalar(e) = a {
                                cc(e);
                            }
                        }
                    }
                    Stmt::Emit(e) => cc(e),
                    Stmt::Check(_) | Stmt::Trap { .. } => {} // fused, no pool use
                }
            }
            if let Terminator::Branch { cond, .. } = &b.term {
                cc(cond);
            }
        }
    }

    // pass 2: lower blocks in index order, recording block offsets
    let mut lw = Lowerer {
        f,
        var_tys,
        var_slots,
        n_ivars,
        n_fvars,
        ipool,
        fpool,
        imap,
        fmap,
        code: Vec::new(),
        idx_regs: Vec::new(),
        checks: Vec::new(),
        fast_checks: Vec::new(),
        fast2_checks: Vec::new(),
        fastn_checks: Vec::new(),
        calls: Vec::new(),
        traps: Vec::new(),
        next_itemp: 0,
        next_ftemp: 0,
        max_itemps: 0,
        max_ftemps: 0,
        block_start: 0,
    };
    let mut block_offsets = Vec::with_capacity(f.blocks.len());
    for b in &f.blocks {
        lw.block_start = lw.code.len();
        block_offsets.push(lw.code.len() as u32);
        for s in &b.stmts {
            lw.lower_stmt(s);
        }
        lw.reset_temps();
        match &b.term {
            Terminator::Jump(t) => lw.code.push(Instr::Jump { target: t.0 }),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                // charge before condition evaluation, as the tree-walker
                lw.push_charge(cond.cost() + 1, false);
                // fuse integer comparisons straight into the branch
                let fused = match cond {
                    Expr::Binary(op, l, r)
                        if is_relational(*op)
                            && lw.ty_of(l) == Ty::Int
                            && lw.ty_of(r) == Ty::Int =>
                    {
                        let lhs = lw.lower_expr(l, None);
                        let rhs = lw.lower_expr(r, None);
                        Some(Instr::BrICmp {
                            op: *op,
                            lhs,
                            rhs,
                            then_t: then_bb.0,
                            else_t: else_bb.0,
                        })
                    }
                    _ => None,
                };
                let instr = fused.unwrap_or_else(|| {
                    // non-relational or real-typed: evaluate to a 0/1
                    // integer (truncating a real condition, matching
                    // `as_int() != 0`)
                    let c = lw.lower_as(Ty::Int, cond);
                    Instr::Branch {
                        cond: c,
                        then_t: then_bb.0,
                        else_t: else_bb.0,
                    }
                });
                lw.code.push(instr);
            }
            Terminator::Return => lw.code.push(Instr::Return),
        }
    }

    // pass 3: rewrite block ids into code offsets
    for instr in &mut lw.code {
        match instr {
            Instr::Jump { target } => *target = block_offsets[*target as usize],
            Instr::Branch { then_t, else_t, .. } | Instr::BrICmp { then_t, else_t, .. } => {
                *then_t = block_offsets[*then_t as usize];
                *else_t = block_offsets[*else_t as usize];
            }
            _ => {}
        }
    }

    let mut ireg_init = vec![0i64; lw.n_ivars as usize];
    ireg_init.extend_from_slice(&lw.ipool);
    ireg_init.resize(ireg_init.len() + lw.max_itemps as usize, 0);
    let mut freg_init = vec![0f64; lw.n_fvars as usize];
    freg_init.extend_from_slice(&lw.fpool);
    freg_init.resize(freg_init.len() + lw.max_ftemps as usize, 0.0);

    let cf = CompiledFunction {
        name: f.name.clone(),
        params: f.params.clone(),
        var_slots: lw.var_slots,
        arrays: f
            .arrays
            .iter()
            .map(|a| ArraySpec {
                name: a.name.clone(),
                ty: a.ty,
                dims: a.dims.clone(),
            })
            .collect(),
        ireg_init,
        freg_init,
        code: lw.code,
        entry: block_offsets[f.entry.index()],
        idx_regs: lw.idx_regs,
        checks: lw.checks,
        fast_checks: lw.fast_checks,
        fast2_checks: lw.fast2_checks,
        fastn_checks: lw.fastn_checks,
        calls: lw.calls,
        traps: lw.traps,
    };
    validate(&cf);
    cf
}

/// Asserts the structural invariants the dispatch loop's unchecked
/// accesses rely on: every register operand indexes within its bank,
/// every table id is in range, every jump target is a valid code offset,
/// and control can never fall off the end of the stream (the last
/// instruction of every block is a terminator). Runs once per lowered
/// function; a violation is a lowering bug, so it panics.
#[allow(clippy::too_many_lines)]
pub(crate) fn validate(cf: &CompiledFunction) {
    let ni = cf.ireg_init.len();
    let nf = cf.freg_init.len();
    let nc = cf.code.len();
    let na = cf.arrays.len();
    let ir = |r: Reg| assert!((r as usize) < ni, "i-reg {r} out of bank {ni}");
    let fr = |r: Reg| assert!((r as usize) < nf, "f-reg {r} out of bank {nf}");
    let ar = |a: u32| assert!((a as usize) < na, "array id {a} out of table {na}");
    let off = |t: u32| assert!((t as usize) < nc, "code offset {t} out of {nc}");
    assert!(nc > 0, "empty code stream");
    off(cf.entry);
    for (pos, instr) in cf.code.iter().enumerate() {
        // every fallthrough instruction must have a successor
        if !matches!(
            instr,
            Instr::Jump { .. }
                | Instr::Branch { .. }
                | Instr::BrICmp { .. }
                | Instr::Return
                | Instr::Trap { .. }
        ) {
            assert!(pos + 1 < nc, "fallthrough off the end at {pos}");
        }
        match instr {
            Instr::Charge { .. } | Instr::Return | Instr::Trap { .. } => {}
            Instr::ICopy { dst, src } | Instr::INeg { dst, src } | Instr::INot { dst, src } => {
                ir(*dst);
                ir(*src);
            }
            Instr::FCopy { dst, src } | Instr::FNeg { dst, src } => {
                fr(*dst);
                fr(*src);
            }
            Instr::ItoF { dst, src } => {
                fr(*dst);
                ir(*src);
            }
            Instr::FtoI { dst, src } => {
                ir(*dst);
                fr(*src);
            }
            Instr::IAdd { dst, lhs, rhs }
            | Instr::ISub { dst, lhs, rhs }
            | Instr::IMul { dst, lhs, rhs }
            | Instr::IBin { dst, lhs, rhs, .. } => {
                ir(*dst);
                ir(*lhs);
                ir(*rhs);
            }
            Instr::FArith { dst, lhs, rhs, .. } => {
                fr(*dst);
                fr(*lhs);
                fr(*rhs);
            }
            Instr::FCmp { dst, lhs, rhs, .. } => {
                ir(*dst);
                fr(*lhs);
                fr(*rhs);
            }
            Instr::LoadI1 { dst, arr, idx } => {
                ir(*dst);
                ar(*arr);
                ir(*idx);
            }
            Instr::LoadF1 { dst, arr, idx } => {
                fr(*dst);
                ar(*arr);
                ir(*idx);
            }
            Instr::StoreI1 { arr, idx, src } => {
                ar(*arr);
                ir(*idx);
                ir(*src);
            }
            Instr::StoreF1 { arr, idx, src } => {
                ar(*arr);
                ir(*idx);
                fr(*src);
            }
            Instr::LoadI2 { dst, arr, i0, i1 } => {
                ir(*dst);
                ar(*arr);
                ir(*i0);
                ir(*i1);
            }
            Instr::LoadF2 { dst, arr, i0, i1 } => {
                fr(*dst);
                ar(*arr);
                ir(*i0);
                ir(*i1);
            }
            Instr::StoreI2 { arr, i0, i1, src } => {
                ar(*arr);
                ir(*i0);
                ir(*i1);
                ir(*src);
            }
            Instr::StoreF2 { arr, i0, i1, src } => {
                ar(*arr);
                ir(*i0);
                ir(*i1);
                fr(*src);
            }
            Instr::LoadIN {
                dst,
                arr,
                idx,
                rank,
            }
            | Instr::LoadFN {
                dst,
                arr,
                idx,
                rank,
            } => {
                match instr {
                    Instr::LoadIN { .. } => ir(*dst),
                    _ => fr(*dst),
                }
                ar(*arr);
                assert!((*idx as usize + *rank as usize) <= cf.idx_regs.len());
            }
            Instr::StoreIN {
                arr,
                idx,
                rank,
                src,
            }
            | Instr::StoreFN {
                arr,
                idx,
                rank,
                src,
            } => {
                match instr {
                    Instr::StoreIN { .. } => ir(*src),
                    _ => fr(*src),
                }
                ar(*arr);
                assert!((*idx as usize + *rank as usize) <= cf.idx_regs.len());
            }
            Instr::Check1 { fast } => {
                let fc = &cf.fast_checks[*fast as usize];
                ir(fc.reg);
                assert!((fc.check as usize) < cf.checks.len());
            }
            Instr::Check2 { fast } => {
                let fc = &cf.fast2_checks[*fast as usize];
                ir(fc.r0);
                ir(fc.r1);
                assert!((fc.check as usize) < cf.checks.len());
            }
            Instr::CheckN { fast } => {
                let fc = &cf.fastn_checks[*fast as usize];
                for (r, _) in fc.terms.iter() {
                    ir(*r);
                }
                assert!((fc.check as usize) < cf.checks.len());
            }
            Instr::Check { id } => assert!((*id as usize) < cf.checks.len()),
            Instr::Call { id } => assert!((*id as usize) < cf.calls.len()),
            Instr::EmitI { src } => ir(*src),
            Instr::EmitF { src } => fr(*src),
            Instr::Jump { target } => off(*target),
            Instr::Branch {
                cond,
                then_t,
                else_t,
            } => {
                ir(*cond);
                off(*then_t);
                off(*else_t);
            }
            Instr::BrICmp {
                lhs,
                rhs,
                then_t,
                else_t,
                ..
            } => {
                ir(*lhs);
                ir(*rhs);
                off(*then_t);
                off(*else_t);
            }
        }
    }
    for r in &cf.idx_regs {
        ir(*r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;

    #[test]
    fn checks_become_single_fast_instructions() {
        let p =
            compile("program p\n integer a(1:10)\n integer i\n i = 1\n a(i) = 0\nend\n").unwrap();
        let cp = lower(&p);
        let f = &cp.functions[0];
        let check1 = f
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Check1 { .. }))
            .count();
        assert_eq!(check1, 2); // lower + upper, both on plain `i`
        assert_eq!(f.fast_checks.len(), 2);
        assert_eq!(f.checks.len(), 2); // display entries kept for traps
    }

    #[test]
    fn constants_are_pooled_and_deduplicated() {
        let p = compile("program p\n integer x, y\n x = 7\n y = 7\n print x + y\nend\n").unwrap();
        let f = &lower(&p).functions[0];
        let sevens = f.ireg_init.iter().filter(|v| **v == 7).count();
        assert_eq!(sevens, 1, "literal 7 pooled once");
        assert!(f.code.iter().any(|i| matches!(i, Instr::ICopy { .. })));
    }

    #[test]
    fn jumps_resolve_to_code_offsets() {
        let p = compile(
            "program p\n integer i, s\n s = 0\n do i = 1, 3\n s = s + i\n enddo\n print s\nend\n",
        )
        .unwrap();
        let f = &lower(&p).functions[0];
        for instr in &f.code {
            match instr {
                Instr::Jump { target } => assert!((*target as usize) < f.code.len()),
                Instr::Branch { then_t, else_t, .. } | Instr::BrICmp { then_t, else_t, .. } => {
                    assert!((*then_t as usize) < f.code.len());
                    assert!((*else_t as usize) < f.code.len());
                }
                _ => {}
            }
        }
        assert!((f.entry as usize) < f.code.len());
        // the loop condition is an integer comparison: fused branch
        assert!(f.code.iter().any(|i| matches!(i, Instr::BrICmp { .. })));
    }

    #[test]
    fn conversions_elided_when_types_match() {
        let p = compile("program p\n integer x\n x = 1 + 2\n print x\nend\n").unwrap();
        let f = &lower(&p).functions[0];
        assert!(
            !f.code
                .iter()
                .any(|i| matches!(i, Instr::ItoF { .. } | Instr::FtoI { .. })),
            "int expr into int var needs no conversion"
        );
        let p = compile("program p\n real x\n x = 1 + 2\n print x\nend\n").unwrap();
        let f = &lower(&p).functions[0];
        assert!(
            f.code.iter().any(|i| matches!(i, Instr::ItoF { .. })),
            "int expr into real var converts"
        );
    }

    #[test]
    fn mixed_arithmetic_promotes_to_the_real_bank() {
        let p = compile("program p\n real x\n integer i\n i = 3\n x = i * 2.5\n print x\nend\n")
            .unwrap();
        let f = &lower(&p).functions[0];
        assert!(f.code.iter().any(|i| matches!(i, Instr::ItoF { .. })));
        assert!(f
            .code
            .iter()
            .any(|i| matches!(i, Instr::FArith { op: BinOp::Mul, .. })));
    }
}
