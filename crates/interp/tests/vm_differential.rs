//! Differential test: the tree-walking interpreter and the
//! register-bytecode VM must agree *bit for bit* on everything the paper's
//! tables are built from — program output, `dynamic_checks`,
//! `dynamic_guard_ops`, the instruction/progress counters, and trap
//! behavior — across the whole 10-program suite × 7 schemes × {PRX, INX}
//! grid, plus handwritten programs that actually trap or error (the suite
//! itself is trap-free by construction).

use nascent_driver::harness::{harness_limits, prepare};
use nascent_frontend::compile;
use nascent_interp::{lower, run, run_compiled, Limits, RunError, RunResult};
use nascent_rangecheck::{optimize_program, CheckKind, Discharge, OptimizeOptions, Scheme};
use nascent_suite::{suite, Scale};

fn limits() -> Limits {
    harness_limits()
}

/// Runs `prog` on both engines and asserts identical results (or identical
/// errors), returning the tree-walker's result for further checks.
fn assert_engines_agree(
    label: &str,
    prog: &nascent_ir::Program,
    limits: &Limits,
) -> Option<RunResult> {
    let tree = run(prog, limits);
    let vm = run_compiled(&lower(prog), limits);
    match (tree, vm) {
        (Ok(t), Ok(v)) => {
            assert_eq!(t.output, v.output, "{label}: output differs");
            assert_eq!(
                t.dynamic_checks, v.dynamic_checks,
                "{label}: dynamic_checks differ"
            );
            assert_eq!(
                t.dynamic_guard_ops, v.dynamic_guard_ops,
                "{label}: dynamic_guard_ops differ"
            );
            assert_eq!(
                t.dynamic_instructions, v.dynamic_instructions,
                "{label}: dynamic_instructions differ"
            );
            assert_eq!(
                t.dynamic_progress, v.dynamic_progress,
                "{label}: dynamic_progress differs"
            );
            match (&t.trap, &v.trap) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.function, b.function, "{label}: trap function differs");
                    assert_eq!(a.check, b.check, "{label}: trap check differs");
                    assert_eq!(
                        a.at_instruction, b.at_instruction,
                        "{label}: trap at_instruction differs"
                    );
                    assert_eq!(
                        a.at_progress, b.at_progress,
                        "{label}: trap at_progress differs"
                    );
                }
                (a, b) => panic!("{label}: trap verdicts differ: tree={a:?} vm={b:?}"),
            }
            Some(t)
        }
        (Err(te), Err(ve)) => {
            assert_eq!(
                format!("{te:?}"),
                format!("{ve:?}"),
                "{label}: errors differ"
            );
            None
        }
        (t, v) => panic!("{label}: one engine errored: tree={t:?} vm={v:?}"),
    }
}

#[test]
fn suite_times_schemes_times_kinds_is_engine_invariant() {
    let limits = limits();
    for b in suite(Scale::Small) {
        // the driver harness's prepared baseline (compiled once, naive run
        // on the VM) is the same baseline every other consumer uses; the
        // dual-engine run must reproduce its counters exactly
        let pb = prepare(&b);
        let naive = pb.checked.clone();
        let baseline =
            assert_engines_agree(&format!("{} naive", b.name), &naive, &limits).expect("runs");
        assert!(baseline.trap.is_none(), "{} trapped", b.name);
        assert_eq!(
            baseline.dynamic_checks, pb.naive.dynamic_checks,
            "{}: differential baseline disagrees with the harness baseline",
            b.name
        );
        assert_eq!(baseline.output, pb.naive.output, "{}", b.name);
        for kind in [CheckKind::Prx, CheckKind::Inx] {
            for scheme in Scheme::EACH {
                let opts = OptimizeOptions::scheme(scheme).with_kind(kind);
                let mut prog = naive.clone();
                optimize_program(&mut prog, &opts);
                let label = format!("{} {} {:?}", b.name, scheme.name(), kind);
                let r = assert_engines_agree(&label, &prog, &limits).expect("runs");
                // optimizers only remove dynamic checks; both engines must
                // also agree with the naive output
                assert_eq!(r.output, baseline.output, "{label}: output changed");
                assert!(r.dynamic_checks <= baseline.dynamic_checks, "{label}");
            }
        }
    }
}

#[test]
fn discharge_tier_is_engine_invariant_and_behavior_preserving() {
    let limits = limits();
    for b in suite(Scale::Small) {
        let naive = compile(&b.source).expect("benchmark compiles");
        let baseline =
            assert_engines_agree(&format!("{} naive", b.name), &naive, &limits).expect("runs");
        for kind in [CheckKind::Prx, CheckKind::Inx] {
            for scheme in [Scheme::Ni, Scheme::Se, Scheme::Lls, Scheme::All] {
                let opts = OptimizeOptions::scheme(scheme)
                    .with_kind(kind)
                    .with_discharge(Discharge::On);
                let mut prog = naive.clone();
                optimize_program(&mut prog, &opts);
                let label = format!("{} {} {:?} discharge-on", b.name, scheme.name(), kind);
                let r = assert_engines_agree(&label, &prog, &limits).expect("runs");
                // deleting provably-true checks must not change behavior:
                // identical output, still trap-free, never more checks
                assert_eq!(r.output, baseline.output, "{label}: output changed");
                assert!(r.trap.is_none(), "{label}: discharge introduced a trap");
                assert!(r.dynamic_checks <= baseline.dynamic_checks, "{label}");
            }
        }
    }
}

#[test]
fn discharge_preserves_traps_on_both_engines() {
    // i ranges over 1..=10 against a(1:5): the value-range tier can
    // discharge the lower-bound check but must keep the violated upper
    // bound, and the trap must stay bit-identical across engines
    let src = "program p
 integer a(1:5)
 integer i
 do i = 1, 10
  a(i) = i
 enddo
end
";
    let limits = limits();
    let naive = compile(src).expect("compiles");
    let mut traps = Vec::new();
    for discharge in [Discharge::Off, Discharge::On] {
        let opts = OptimizeOptions::scheme(Scheme::Ni).with_discharge(discharge);
        let mut prog = naive.clone();
        optimize_program(&mut prog, &opts);
        let label = format!("trap {discharge:?}");
        let r = assert_engines_agree(&label, &prog, &limits).expect("trap, not error");
        let trap = r.trap.expect("program must still trap");
        assert!(r.output.is_empty(), "{label}: output before trap");
        traps.push(trap);
    }
    // same violated check, same amount of useful work done before it
    assert_eq!(traps[0].check, traps[1].check, "discharge changed the trap");
    assert_eq!(
        traps[0].at_progress, traps[1].at_progress,
        "discharge changed pre-trap progress"
    );
}

#[test]
fn trapping_programs_are_engine_invariant() {
    // out-of-bounds store caught by a check, mid-loop
    let srcs = [
        // trap in the middle of a counted loop
        "program p
 integer a(1:5)
 integer i
 do i = 1, 10
  a(i) = i
 enddo
end
",
        // trap on a load, after some successful output
        "program p
 integer a(1:3)
 integer i
 i = 1
 print a(i)
 i = 7
 print a(i)
end
",
        // trap inside a subroutine with an adjustable array
        "program p
 integer a(1:4)
 integer i
 do i = 1, 4
  a(i) = i
 enddo
 call s(a, 4)
end
subroutine s(x, n)
 integer n
 integer x(1:n)
 x(n + 1) = 0
end
",
    ];
    let limits = limits();
    for (i, src) in srcs.iter().enumerate() {
        let prog = compile(src).expect("compiles");
        let r = assert_engines_agree(&format!("trap program {i}"), &prog, &limits)
            .expect("trap, not error");
        assert!(r.trap.is_some(), "trap program {i} did not trap");
    }
}

#[test]
fn runtime_errors_are_engine_invariant() {
    let limits = limits();
    // division by zero, including one reached only at a specific iteration
    let srcs = [
        "program p\n integer i, j\n j = 0\n i = 1 / j\n print i\nend\n",
        "program p
 integer a(1:10)
 integer i, d
 do i = 1, 10
  d = 5 - i
  a(i) = 100 / d
 enddo
end
",
    ];
    for (i, src) in srcs.iter().enumerate() {
        let prog = compile(src).expect("compiles");
        assert!(
            assert_engines_agree(&format!("error program {i}"), &prog, &limits).is_none(),
            "error program {i} should error on both engines"
        );
    }
}

#[test]
fn step_limit_is_engine_invariant() {
    let src = "program p
 integer a(1:50)
 integer i, j, s
 s = 0
 do i = 1, 50
  do j = 1, 50
   a(j) = j
   s = s + a(j)
  enddo
 enddo
 print s
end
";
    let prog = compile(src).expect("compiles");
    // find the exact budget and probe around it: the limit must cut both
    // engines off at the same point with identical partial counters
    let full = run(&prog, &limits()).expect("runs");
    let budget = full.dynamic_instructions + full.dynamic_checks;
    for max_steps in [1, 7, budget / 2, budget - 1, budget, budget + 1] {
        let l = Limits {
            max_steps,
            max_call_depth: 128,
        };
        assert_engines_agree(&format!("step limit {max_steps}"), &prog, &l);
    }
}

#[test]
fn call_depth_limit_is_engine_invariant() {
    let src = "program p
 integer r
 call f(40, r)
 print r
end
subroutine f(n, out)
 integer n, out
 integer t
 if (n <= 1) then
  out = 1
 else
  call f(n - 1, t)
  out = t + 1
 endif
end
";
    let prog = compile(src).expect("compiles");
    for depth in [2, 8, 39, 40, 41, 64] {
        let l = Limits {
            max_steps: 2_000_000_000,
            max_call_depth: depth,
        };
        assert_engines_agree(&format!("call depth {depth}"), &prog, &l);
    }
}

#[test]
fn undetected_violation_is_engine_invariant() {
    // compile without checks, then index out of bounds: both engines must
    // report the same UndetectedViolation error
    let src = "program p
 integer a(1:5)
 integer i
 do i = 1, 6
  a(i) = i
 enddo
end
";
    let prog = nascent_frontend::compile_with(src, nascent_frontend::CheckInsertion::None).unwrap();
    let limits = limits();
    let tree = run(&prog, &limits);
    let vm = run_compiled(&lower(&prog), &limits);
    assert!(
        matches!(tree, Err(RunError::UndetectedViolation { .. })),
        "tree: {tree:?}"
    );
    assert_eq!(
        format!("{:?}", tree.err()),
        format!("{:?}", vm.err()),
        "unchecked violation differs"
    );
}
