//! Three-way differential: the tree-walking interpreter, the
//! register-bytecode VM, and the native tier (compiled instrumented C)
//! must agree *bit for bit* — counters, outputs (reals by bit pattern),
//! trap records, and error verdicts — on trap-seeded programs,
//! discharge-on suite rows, and limit probes.
//!
//! Every test gates on a working C compiler and skips (with a named
//! reason) when the host has none; the tree/VM half of the differential
//! is covered unconditionally by `vm_differential.rs`.

use nascent_cback::cc_available;
use nascent_driver::harness::{compare_engines, harness_limits};
use nascent_frontend::compile;
use nascent_interp::{Engine, Limits, RunResult};
use nascent_rangecheck::{optimize_program, CheckKind, Discharge, OptimizeOptions, Scheme};
use nascent_suite::{suite, Scale};

const THREE: [Engine; 3] = [Engine::Tree, Engine::Vm, Engine::Native];

fn skip() -> bool {
    if cc_available() {
        return false;
    }
    eprintln!("skipping: no C compiler for the native tier ($CC / cc)");
    true
}

fn three_way(label: &str, prog: &nascent_ir::Program, limits: &Limits) -> Option<RunResult> {
    compare_engines(label, prog, limits, &THREE).ok()
}

#[test]
fn trap_seeded_programs_agree_across_three_engines() {
    if skip() {
        return;
    }
    let srcs = [
        // trap in the middle of a counted loop
        "program p\n integer a(1:5)\n integer i\n do i = 1, 10\n  a(i) = i\n enddo\nend\n",
        // trap on a load, after some successful output
        "program p\n integer a(1:3)\n integer i\n i = 1\n print a(i)\n i = 7\n print a(i)\nend\n",
        // trap inside a subroutine with an adjustable array
        "program p
 integer a(1:4)
 integer i
 do i = 1, 4
  a(i) = i
 enddo
 call s(a, 4)
end
subroutine s(x, n)
 integer n
 integer x(1:n)
 x(n + 1) = 0
end
",
    ];
    let limits = harness_limits();
    for (i, src) in srcs.iter().enumerate() {
        let naive = compile(src).expect("compiles");
        for scheme in [None, Some(Scheme::Ni), Some(Scheme::Lls)] {
            let mut prog = naive.clone();
            if let Some(s) = scheme {
                optimize_program(&mut prog, &OptimizeOptions::scheme(s));
            }
            let label = format!("trap program {i} {scheme:?}");
            let r = three_way(&label, &prog, &limits).expect("trap, not error");
            assert!(r.trap.is_some(), "{label}: did not trap");
        }
    }
}

#[test]
fn discharge_on_suite_rows_agree_across_three_engines() {
    if skip() {
        return;
    }
    let limits = harness_limits();
    for b in suite(Scale::Small) {
        let naive = compile(&b.source).expect("benchmark compiles");
        let baseline =
            three_way(&format!("{} naive", b.name), &naive, &limits).expect("suite runs");
        assert!(baseline.trap.is_none(), "{} trapped", b.name);
        for kind in [CheckKind::Prx, CheckKind::Inx] {
            for scheme in [Scheme::Ni, Scheme::Lls] {
                let opts = OptimizeOptions::scheme(scheme)
                    .with_kind(kind)
                    .with_discharge(Discharge::On);
                let mut prog = naive.clone();
                optimize_program(&mut prog, &opts);
                let label = format!("{} {} {:?} discharge-on", b.name, scheme.name(), kind);
                let r = three_way(&label, &prog, &limits).expect("runs");
                assert_eq!(r.output, baseline.output, "{label}: output changed");
                assert!(r.trap.is_none(), "{label}: discharge introduced a trap");
            }
        }
    }
}

#[test]
fn runtime_errors_agree_across_three_engines() {
    if skip() {
        return;
    }
    let limits = harness_limits();
    let srcs = [
        "program p\n integer i, j\n j = 0\n i = 1 / j\n print i\nend\n",
        "program p
 integer a(1:10)
 integer i, d
 do i = 1, 10
  d = 5 - i
  a(i) = 100 / d
 enddo
end
",
    ];
    for (i, src) in srcs.iter().enumerate() {
        let prog = compile(src).expect("compiles");
        assert!(
            three_way(&format!("error program {i}"), &prog, &limits).is_none(),
            "error program {i} should error on all engines"
        );
    }
}

#[test]
fn limits_agree_across_three_engines() {
    if skip() {
        return;
    }
    // step limit: probe around the exact budget; the limit is passed to
    // the native binary via the environment, so every probe reuses one
    // cached compile
    let src = "program p
 integer a(1:50)
 integer i, j, s
 s = 0
 do i = 1, 50
  do j = 1, 50
   a(j) = j
   s = s + a(j)
  enddo
 enddo
 print s
end
";
    let prog = compile(src).expect("compiles");
    let full = three_way("step-limit full", &prog, &harness_limits()).expect("runs");
    let budget = full.dynamic_instructions + full.dynamic_checks;
    for max_steps in [1, 7, budget / 2, budget - 1, budget, budget + 1] {
        let l = Limits {
            max_steps,
            max_call_depth: 128,
        };
        let _ = compare_engines(&format!("step limit {max_steps}"), &prog, &l, &THREE);
    }

    // call depth: the limit is tested at callee entry on every engine
    let rec = "program p
 integer r
 call f(40, r)
 print r
end
subroutine f(n, out)
 integer n, out
 integer t
 if (n <= 1) then
  out = 1
 else
  call f(n - 1, t)
  out = t + 1
 endif
end
";
    let prog = compile(rec).expect("compiles");
    for depth in [2, 8, 39, 40, 41, 64] {
        let l = Limits {
            max_steps: 2_000_000_000,
            max_call_depth: depth,
        };
        let _ = compare_engines(&format!("call depth {depth}"), &prog, &l, &THREE);
    }
}
