//! The statement-trace facility.

use nascent_frontend::compile;
use nascent_interp::{run, run_traced, Limits};

#[test]
fn trace_records_statements_in_order() {
    let src = "program p\n integer x\n x = 1\n x = x + 1\n print x\nend\n";
    let prog = compile(src).unwrap();
    let (r, trace) = run_traced(&prog, &Limits::default(), 100);
    let r = r.unwrap();
    assert_eq!(r.output.len(), 1);
    assert_eq!(trace.len(), 3);
    assert_eq!(trace[0].rendered, "x = 1");
    assert_eq!(trace[1].rendered, "x = (x + 1)");
    assert!(trace[2].rendered.starts_with("emit"));
    assert!(trace.iter().all(|e| e.function == "p"));
}

#[test]
fn trace_cap_is_respected() {
    let src =
        "program p\n integer i, s\n s = 0\n do i = 1, 100\n s = s + i\n enddo\n print s\nend\n";
    let prog = compile(src).unwrap();
    let (r, trace) = run_traced(&prog, &Limits::default(), 10);
    assert!(r.is_ok());
    assert_eq!(trace.len(), 10);
}

#[test]
fn traced_run_matches_untraced_run() {
    let src = "program p\n integer a(1:5)\n integer i\n do i = 1, 5\n a(i) = i * i\n enddo\n print a(4)\nend\n";
    let prog = compile(src).unwrap();
    let plain = run(&prog, &Limits::default()).unwrap();
    let (traced, events) = run_traced(&prog, &Limits::default(), 1000);
    assert_eq!(plain, traced.unwrap());
    assert!(events.iter().any(|e| e.rendered.contains("Check (")));
    assert!(events.iter().any(|e| e.rendered.contains("a(i)")));
}

#[test]
fn trace_captures_path_to_trap() {
    let src = "program p\n integer a(1:3)\n integer i\n do i = 1, 5\n a(i) = i\n enddo\nend\n";
    let prog = compile(src).unwrap();
    let (r, trace) = run_traced(&prog, &Limits::default(), 1000);
    assert!(r.unwrap().trap.is_some());
    // the last recorded event is the failing check
    assert!(trace.last().unwrap().rendered.contains("Check ("));
}
