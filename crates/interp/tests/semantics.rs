//! Focused semantics tests: operator edge cases, coercions, array
//! aliasing through by-reference parameters, and unusual bounds.

use nascent_frontend::compile;
use nascent_interp::{run, Limits, RunError, Value};

fn run_src(src: &str) -> nascent_interp::RunResult {
    run(&compile(src).unwrap(), &Limits::default()).unwrap()
}

#[test]
fn integer_division_truncates_toward_zero() {
    let r = run_src(
        "program p\n integer a, b\n a = -7\n b = 2\n print a / b\n print mod(a, b)\n print 7 / -2\nend\n",
    );
    assert_eq!(
        r.output,
        vec![Value::Int(-3), Value::Int(-1), Value::Int(-3)]
    );
}

#[test]
fn min_max_and_logic() {
    let r = run_src(
        "program p
 integer x
 x = 5
 print min(x, 3) + max(x, 9)
 print (x > 1 and x < 9)
 print (x > 9 or x == 5)
 print not (x == 5)
end
",
    );
    assert_eq!(
        r.output,
        vec![Value::Int(12), Value::Int(1), Value::Int(1), Value::Int(0)]
    );
}

#[test]
fn int_to_real_coercion_on_assignment_and_mixing() {
    let r = run_src(
        "program p
 real x
 integer i
 i = 3
 x = i
 x = x / 2
 print x
end
",
    );
    assert_eq!(r.output, vec![Value::Real(1.5)]);
}

#[test]
fn aliased_array_parameters_share_storage() {
    // the same array passed twice: writes through one name are visible
    // through the other (Fortran-style aliasing)
    let r = run_src(
        "subroutine s(n, x, y)
 integer n
 integer x(1:n), y(1:n)
 x(1) = 41
 y(1) = y(1) + 1
end
program p
 integer a(1:4)
 call s(4, a, a)
 print a(1)
end
",
    );
    assert_eq!(r.output, vec![Value::Int(42)]);
}

#[test]
fn nested_calls_pass_arrays_through() {
    let r = run_src(
        "subroutine inner(n, b)
 integer n
 integer b(1:n)
 b(n) = 99
end
subroutine outer(n, a)
 integer n
 integer a(1:n)
 call inner(n, a)
end
program p
 integer a(1:7)
 call outer(7, a)
 print a(7)
end
",
    );
    assert_eq!(r.output, vec![Value::Int(99)]);
}

#[test]
fn single_element_and_negative_bound_arrays() {
    let r = run_src(
        "program p
 integer one(5:5), neg(-3:-1)
 one(5) = 10
 neg(-3) = 1
 neg(-2) = 2
 neg(-1) = 3
 print one(5) + neg(-3) + neg(-1)
end
",
    );
    assert_eq!(r.output, vec![Value::Int(14)]);
}

#[test]
fn zero_extent_array_is_allocatable_but_untouchable() {
    // extent 0 (hi = lo - 1) is legal to declare; any access traps
    let r = run_src(
        "subroutine s(n)
 integer n
 integer a(1:n)
 print 5
end
program p
 call s(0)
end
",
    );
    assert!(r.trap.is_none());
    assert_eq!(r.output, vec![Value::Int(5)]);
    // accessing it traps on the checks
    let r = run_src(
        "subroutine s(n)
 integer n
 integer a(1:n)
 a(1) = 1
end
program p
 call s(0)
end
",
    );
    assert!(r.trap.is_some());
}

#[test]
fn negative_extent_is_a_run_error() {
    let p =
        compile("subroutine s(n)\n integer n\n integer a(1:n)\nend\nprogram p\n call s(-5)\nend\n")
            .unwrap();
    assert!(matches!(
        run(&p, &Limits::default()),
        Err(RunError::BadBounds { .. })
    ));
}

#[test]
fn real_comparisons_drive_branches() {
    let r = run_src(
        "program p
 real x
 x = 0.1 + 0.2
 if (x > 0.3) then
  print 1
 else
  print 0
 endif
end
",
    );
    // 0.1 + 0.2 > 0.3 in IEEE double arithmetic
    assert_eq!(r.output, vec![Value::Int(1)]);
}

#[test]
fn scalar_params_coerce_to_declared_type() {
    let r = run_src(
        "subroutine s(x)
 real x
 print x * 2.0
end
program p
 call s(3)
end
",
    );
    assert_eq!(r.output, vec![Value::Real(6.0)]);
}

#[test]
fn wraparound_subscript_arithmetic() {
    let r = run_src(
        "program p
 integer a(0:9)
 integer i, j
 do i = 0, 19
  j = mod(i, 10)
  a(j) = a(j) + 1
 enddo
 print a(0) + a(9)
end
",
    );
    assert_eq!(r.output, vec![Value::Int(4)]);
}

#[test]
fn emit_preserves_value_kinds() {
    let r = run_src("program p\n print 1\n print 1.0\nend\n");
    assert_eq!(r.output, vec![Value::Int(1), Value::Real(1.0)]);
    assert_ne!(r.output[0], r.output[1], "Int(1) != Real(1.0)");
}
