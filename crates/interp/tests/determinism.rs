//! Interpreter invariants: determinism, counter consistency, and
//! trap-point stability.
#![cfg(feature = "proptest-tests")]
// Entire file is property-based; gated so `--no-default-features`
// builds without the vendored proptest shim.

use nascent_frontend::{compile, compile_with, CheckInsertion};
use nascent_interp::{run, Limits};
use proptest::prelude::*;

fn limits() -> Limits {
    Limits {
        max_steps: 2_000_000,
        max_call_depth: 32,
    }
}

#[test]
fn runs_are_deterministic() {
    let src = "program p
 integer a(1:50)
 integer i, s
 s = 0
 do i = 1, 50
  a(i) = mod(i * 17, 23)
  s = s + a(i)
 enddo
 print s
end
";
    let prog = compile(src).unwrap();
    let r1 = run(&prog, &limits()).unwrap();
    let r2 = run(&prog, &limits()).unwrap();
    assert_eq!(r1, r2);
}

#[test]
fn checked_and_unchecked_agree_on_everything_but_checks() {
    let src = "program p
 integer a(1:30)
 integer i
 do i = 1, 30
  a(i) = i * i
 enddo
 print a(30)
end
";
    let checked = run(&compile(src).unwrap(), &limits()).unwrap();
    let unchecked = run(&compile_with(src, CheckInsertion::None).unwrap(), &limits()).unwrap();
    assert_eq!(checked.output, unchecked.output);
    assert_eq!(checked.dynamic_instructions, unchecked.dynamic_instructions);
    assert_eq!(unchecked.dynamic_checks, 0);
    assert_eq!(checked.dynamic_checks, 62); // 30 stores * 2 + 1 load * 2
}

#[test]
fn dynamic_counts_scale_linearly_with_trip_count() {
    let counts: Vec<(u64, u64)> = [10, 20, 40]
        .iter()
        .map(|n| {
            let src = format!(
                "program p\n integer a(1:100)\n integer i\n do i = 1, {n}\n a(i) = i\n enddo\nend\n"
            );
            let r = run(&compile(&src).unwrap(), &limits()).unwrap();
            (r.dynamic_checks, r.dynamic_instructions)
        })
        .collect();
    assert_eq!(counts[0].0 * 2, counts[1].0);
    assert_eq!(counts[0].0 * 4, counts[2].0);
    assert!(counts[2].1 > counts[1].1 && counts[1].1 > counts[0].1);
}

#[test]
fn trap_point_is_stable_and_early_exits() {
    let src = "program p
 integer a(1:5)
 integer i
 do i = 1, 10
  a(i) = i
 enddo
 print a(1)
end
";
    let r1 = run(&compile(src).unwrap(), &limits()).unwrap();
    let r2 = run(&compile(src).unwrap(), &limits()).unwrap();
    let (t1, t2) = (r1.trap.unwrap(), r2.trap.unwrap());
    assert_eq!(t1, t2);
    assert!(r1.output.is_empty(), "nothing printed after the trap");
    // 5 good iterations * 2 checks + the failing 6th upper check
    assert_eq!(r1.dynamic_checks, 12);
}

proptest! {
    /// Random generated programs: re-running is bit-identical.
    #[test]
    fn generated_programs_are_deterministic(seed in 0u64..200) {
        let cfg = nascent_suite::GenConfig::default();
        let src = nascent_suite::random_program(seed, &cfg);
        let prog = compile(&src).unwrap();
        let a = run(&prog, &limits());
        let b = run(&prog, &limits());
        prop_assert_eq!(a, b);
    }

    /// The step limit is respected: instructions + checks never exceed it.
    #[test]
    fn step_limit_is_respected(seed in 0u64..100, cap in 500u64..5000) {
        let cfg = nascent_suite::GenConfig::default();
        let src = nascent_suite::random_program(seed, &cfg);
        let prog = compile(&src).unwrap();
        let l = Limits { max_steps: cap, max_call_depth: 8 };
        if let Ok(r) = run(&prog, &l) {
            prop_assert!(r.dynamic_instructions + r.dynamic_checks <= cap + 8);
        }
    }
}
