//! Canonical multilinear forms — the `range-expression` of §2.2.
//!
//! A [`LinForm`] is a sum `Σ cᵢ·Tᵢ + c₀` where each [`Term`] `Tᵢ` is a
//! product of [`Atom`]s in canonical (sorted) order. Atoms are program
//! variables, or *opaque* subexpressions for operators the form cannot
//! distribute over (division, `mod`, `min`/`max`, comparisons). Folding all
//! literal constants into `c₀` and sorting the symbolic terms realizes the
//! paper's canonical form: semantically equivalent range expressions that
//! are syntactically different (`i+1 <= 4*n` vs `i - 4*n <= -1`) become
//! structurally identical, so they land in the same check *family*.

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::{BinOp, Expr, UnOp};
use crate::stmt::VarId;

/// A multiplicative atom: a variable or an opaque non-affine subexpression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// A scalar program variable.
    Var(VarId),
    /// A subexpression treated as an indivisible symbol (e.g. `i / 2`).
    Opaque(Expr),
}

impl Atom {
    /// Variables referenced by the atom (one for `Var`, all used variables
    /// for `Opaque`).
    pub fn vars(&self) -> Vec<VarId> {
        match self {
            Atom::Var(v) => vec![*v],
            Atom::Opaque(e) => e.vars(),
        }
    }
}

/// A product of atoms in canonical sorted order. Never empty.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Term(Vec<Atom>);

impl Term {
    /// A term holding a single atom.
    pub fn atom(a: Atom) -> Term {
        Term(vec![a])
    }

    /// A term holding a single variable.
    pub fn var(v: VarId) -> Term {
        Term::atom(Atom::Var(v))
    }

    /// Product of two terms (multiset union of atoms, re-sorted).
    pub fn product(&self, other: &Term) -> Term {
        let mut atoms = self.0.clone();
        atoms.extend(other.0.iter().cloned());
        atoms.sort();
        Term(atoms)
    }

    /// The atoms of the term.
    pub fn atoms(&self) -> &[Atom] {
        &self.0
    }

    /// Degree of the term (number of atom factors).
    pub fn degree(&self) -> usize {
        self.0.len()
    }

    /// All variables referenced by the term.
    pub fn vars(&self) -> Vec<VarId> {
        self.0.iter().flat_map(Atom::vars).collect()
    }

    /// True if the term is exactly the single variable `v`.
    pub fn is_var(&self, v: VarId) -> bool {
        self.0.len() == 1 && self.0[0] == Atom::Var(v)
    }
}

/// A canonical multilinear polynomial with an integer constant part.
///
/// The zero polynomial has no terms. Coefficients are never stored as zero.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinForm {
    terms: BTreeMap<Term, i64>,
    constant: i64,
}

impl LinForm {
    /// The zero form.
    pub fn zero() -> LinForm {
        LinForm::default()
    }

    /// A constant form.
    pub fn constant(c: i64) -> LinForm {
        LinForm {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The form `1·v`.
    pub fn var(v: VarId) -> LinForm {
        let mut terms = BTreeMap::new();
        terms.insert(Term::var(v), 1);
        LinForm { terms, constant: 0 }
    }

    /// The form `1·atom`.
    pub fn atom(a: Atom) -> LinForm {
        let mut terms = BTreeMap::new();
        terms.insert(Term::atom(a), 1);
        LinForm { terms, constant: 0 }
    }

    /// Builds a form from `(term, coefficient)` pairs plus a constant,
    /// dropping zero coefficients and combining duplicates.
    pub fn from_terms(pairs: impl IntoIterator<Item = (Term, i64)>, constant: i64) -> LinForm {
        let mut f = LinForm::constant(constant);
        for (t, c) in pairs {
            f.add_term(t, c);
        }
        f
    }

    /// Adds `coeff·term` into the form.
    pub fn add_term(&mut self, term: Term, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let entry = self.terms.entry(term).or_insert(0);
        *entry = entry.wrapping_add(coeff);
        if *entry == 0 {
            // remove the now-zero coefficient to keep canonicity
            let dead: Vec<Term> = self
                .terms
                .iter()
                .filter(|(_, c)| **c == 0)
                .map(|(t, _)| t.clone())
                .collect();
            for t in dead {
                self.terms.remove(&t);
            }
        }
    }

    /// The constant part.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// Sets the constant part.
    pub fn set_constant(&mut self, c: i64) {
        self.constant = c;
    }

    /// The symbolic terms with their coefficients, in canonical order.
    pub fn terms(&self) -> impl Iterator<Item = (&Term, i64)> {
        self.terms.iter().map(|(t, c)| (t, *c))
    }

    /// Number of symbolic terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// True if the form is a literal constant (no symbolic terms).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The coefficient of `term` (zero if absent).
    pub fn coeff(&self, term: &Term) -> i64 {
        self.terms.get(term).copied().unwrap_or(0)
    }

    /// The coefficient of the degree-1 term for variable `v`.
    pub fn coeff_of_var(&self, v: VarId) -> i64 {
        self.coeff(&Term::var(v))
    }

    /// Sum of two forms.
    pub fn add(&self, other: &LinForm) -> LinForm {
        let mut out = self.clone();
        out.constant = out.constant.wrapping_add(other.constant);
        for (t, c) in other.terms() {
            out.add_term(t.clone(), c);
        }
        out
    }

    /// Difference of two forms.
    pub fn sub(&self, other: &LinForm) -> LinForm {
        self.add(&other.scale(-1))
    }

    /// The form scaled by `k`.
    pub fn scale(&self, k: i64) -> LinForm {
        if k == 0 {
            return LinForm::zero();
        }
        LinForm {
            terms: self
                .terms
                .iter()
                .map(|(t, c)| (t.clone(), c.wrapping_mul(k)))
                .collect(),
            constant: self.constant.wrapping_mul(k),
        }
    }

    /// Negation.
    pub fn neg(&self) -> LinForm {
        self.scale(-1)
    }

    /// Product of two forms (distributes; term products merge atom multisets).
    pub fn mul(&self, other: &LinForm) -> LinForm {
        let mut out = LinForm::constant(self.constant.wrapping_mul(other.constant));
        for (t, c) in self.terms() {
            out.add_term(t.clone(), c.wrapping_mul(other.constant));
        }
        for (t, c) in other.terms() {
            out.add_term(t.clone(), c.wrapping_mul(self.constant));
        }
        for (t1, c1) in self.terms() {
            for (t2, c2) in other.terms() {
                out.add_term(t1.product(t2), c1.wrapping_mul(c2));
            }
        }
        out
    }

    /// All variables referenced (through terms and opaque atoms); sorted and
    /// deduplicated. Definitions of any of these kill checks on this form.
    pub fn vars(&self) -> Vec<VarId> {
        let mut vs: Vec<VarId> = self.terms.keys().flat_map(Term::vars).collect();
        vs.sort();
        vs.dedup();
        vs
    }

    /// True if any term references variable `v`.
    pub fn uses_var(&self, v: VarId) -> bool {
        self.terms.keys().any(|t| t.vars().contains(&v))
    }

    /// The symbolic part only (constant zeroed) — this is the *family key*
    /// of a canonical check.
    pub fn symbolic_part(&self) -> LinForm {
        LinForm {
            terms: self.terms.clone(),
            constant: 0,
        }
    }

    /// If the form is `k·v + c` for a single variable `v`, returns
    /// `(v, k, c)`.
    pub fn as_single_var(&self) -> Option<(VarId, i64, i64)> {
        if self.terms.len() != 1 {
            return None;
        }
        let (t, c) = self.terms.iter().next().unwrap();
        match t.atoms() {
            [Atom::Var(v)] => Some((*v, *c, self.constant)),
            _ => None,
        }
    }

    /// Substitutes a form for a variable: every occurrence of `v` as a
    /// degree-1 factor is replaced by `replacement`. Returns `None` when `v`
    /// occurs inside an opaque atom or in a term of degree > 1 together with
    /// other factors and the replacement is not constant-free-safe — to stay
    /// conservative we only substitute when every term containing `v` is
    /// exactly the single-variable term.
    pub fn substitute_var(&self, v: VarId, replacement: &LinForm) -> Option<LinForm> {
        let mut out = LinForm::constant(self.constant);
        for (t, c) in self.terms() {
            if t.is_var(v) {
                out = out.add(&replacement.scale(c));
            } else if t.vars().contains(&v) {
                return None;
            } else {
                out.add_term(t.clone(), c);
            }
        }
        Some(out)
    }

    /// Converts an expression tree into canonical form. `Add`, `Sub`, `Mul`
    /// and `Neg` distribute; any other operator becomes an opaque atom for
    /// its whole subtree (after constant folding).
    pub fn from_expr(e: &Expr) -> LinForm {
        match e {
            Expr::IntConst(v) => LinForm::constant(*v),
            Expr::RealConst(_) => LinForm::atom(Atom::Opaque(e.clone())),
            Expr::Var(v) => LinForm::var(*v),
            Expr::Unary(UnOp::Neg, inner) => LinForm::from_expr(inner).neg(),
            Expr::Unary(UnOp::Not, _) => LinForm::atom(Atom::Opaque(e.fold())),
            Expr::Binary(op, l, r) => match op {
                BinOp::Add => LinForm::from_expr(l).add(&LinForm::from_expr(r)),
                BinOp::Sub => LinForm::from_expr(l).sub(&LinForm::from_expr(r)),
                BinOp::Mul => LinForm::from_expr(l).mul(&LinForm::from_expr(r)),
                _ => {
                    let folded = e.fold();
                    if let Expr::IntConst(v) = folded {
                        LinForm::constant(v)
                    } else {
                        LinForm::atom(Atom::Opaque(folded))
                    }
                }
            },
        }
    }

    /// Renders the form back into an expression tree (used when materializing
    /// inserted checks and for the interpreter).
    pub fn to_expr(&self) -> Expr {
        let mut acc: Option<Expr> = None;
        for (t, c) in self.terms() {
            let mut factor: Option<Expr> = None;
            for a in t.atoms() {
                let ae = match a {
                    Atom::Var(v) => Expr::var(*v),
                    Atom::Opaque(e) => e.clone(),
                };
                factor = Some(match factor {
                    None => ae,
                    Some(f) => Expr::mul(f, ae),
                });
            }
            let factor = factor.expect("terms are non-empty");
            let term_expr = match c {
                1 => factor,
                -1 => Expr::neg(factor),
                _ => Expr::mul(Expr::int(c), factor),
            };
            acc = Some(match acc {
                None => term_expr,
                Some(f) => Expr::add(f, term_expr),
            });
        }
        match acc {
            None => Expr::int(self.constant),
            Some(f) => {
                if self.constant == 0 {
                    f
                } else {
                    Expr::add(f, Expr::int(self.constant))
                }
            }
        }
    }
}

impl fmt::Display for LinForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (t, c) in self.terms() {
            if first {
                if c < 0 {
                    write!(f, "-")?;
                }
                first = false;
            } else if c < 0 {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let mag = c.unsigned_abs();
            if mag != 1 {
                write!(f, "{mag}*")?;
            }
            let mut first_atom = true;
            for a in t.atoms() {
                if !first_atom {
                    write!(f, "*")?;
                }
                first_atom = false;
                match a {
                    Atom::Var(v) => write!(f, "{v}")?,
                    Atom::Opaque(e) => write!(f, "[{e:?}]")?,
                }
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0 {
            if self.constant < 0 {
                write!(f, " - {}", self.constant.unsigned_abs())?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn canonicalizes_syntactic_variants() {
        // i + 1 - 4*n  vs  1 + i - n*4
        let a = LinForm::from_expr(&Expr::sub(
            Expr::add(Expr::var(v(0)), Expr::int(1)),
            Expr::mul(Expr::int(4), Expr::var(v(1))),
        ));
        let b = LinForm::from_expr(&Expr::add(
            Expr::int(1),
            Expr::sub(Expr::var(v(0)), Expr::mul(Expr::var(v(1)), Expr::int(4))),
        ));
        assert_eq!(a, b);
        assert_eq!(a.constant_part(), 1);
        assert_eq!(a.coeff_of_var(v(1)), -4);
    }

    #[test]
    fn cancellation_removes_terms() {
        let a = LinForm::var(v(0)).sub(&LinForm::var(v(0)));
        assert!(a.is_constant());
        assert_eq!(a, LinForm::zero());
    }

    #[test]
    fn multiplication_is_multilinear() {
        // (i + 2) * (j - 3) = i*j - 3i + 2j - 6
        let a = LinForm::var(v(0)).add(&LinForm::constant(2));
        let b = LinForm::var(v(1)).sub(&LinForm::constant(3));
        let p = a.mul(&b);
        assert_eq!(p.constant_part(), -6);
        assert_eq!(p.coeff_of_var(v(0)), -3);
        assert_eq!(p.coeff_of_var(v(1)), 2);
        assert_eq!(p.coeff(&Term::var(v(0)).product(&Term::var(v(1)))), 1);
    }

    #[test]
    fn non_affine_becomes_opaque() {
        let e = Expr::bin(BinOp::Div, Expr::var(v(0)), Expr::int(2));
        let f = LinForm::from_expr(&e);
        assert_eq!(f.num_terms(), 1);
        assert!(f.uses_var(v(0)));
        // the opaque atom still reports its variables for the kill rule
        assert_eq!(f.vars(), vec![v(0)]);
    }

    #[test]
    fn opaque_constant_subtree_folds() {
        let e = Expr::bin(BinOp::Div, Expr::int(10), Expr::int(2));
        assert_eq!(LinForm::from_expr(&e), LinForm::constant(5));
    }

    #[test]
    fn family_key_ignores_constant() {
        let a = LinForm::var(v(0)).add(&LinForm::constant(10));
        let b = LinForm::var(v(0)).sub(&LinForm::constant(3));
        assert_eq!(a.symbolic_part(), b.symbolic_part());
    }

    #[test]
    fn substitute_var_linear_only() {
        // 2i + j, i := n - 1   =>  2n + j - 2
        let f = LinForm::from_terms([(Term::var(v(0)), 2), (Term::var(v(1)), 1)], 0);
        let r = LinForm::var(v(2)).sub(&LinForm::constant(1));
        let s = f.substitute_var(v(0), &r).unwrap();
        assert_eq!(s.coeff_of_var(v(2)), 2);
        assert_eq!(s.coeff_of_var(v(1)), 1);
        assert_eq!(s.constant_part(), -2);
        // refuse to substitute into a product term
        let g = LinForm::from_terms([(Term::var(v(0)).product(&Term::var(v(1))), 1)], 0);
        assert!(g.substitute_var(v(0), &r).is_none());
    }

    #[test]
    fn to_expr_round_trips_through_from_expr() {
        let f = LinForm::from_terms(
            [
                (Term::var(v(0)), 3),
                (Term::var(v(1)), -1),
                (Term::var(v(0)).product(&Term::var(v(1))), 2),
            ],
            -7,
        );
        assert_eq!(LinForm::from_expr(&f.to_expr()), f);
    }

    #[test]
    fn as_single_var() {
        let f = LinForm::var(v(4)).scale(3).add(&LinForm::constant(2));
        assert_eq!(f.as_single_var(), Some((v(4), 3, 2)));
        assert_eq!(LinForm::constant(5).as_single_var(), None);
    }

    #[test]
    fn display_is_readable() {
        let f = LinForm::from_terms([(Term::var(v(0)), 1), (Term::var(v(1)), -4)], 1);
        assert_eq!(format!("{f}"), "v0 - 4*v1 + 1");
        assert_eq!(format!("{}", LinForm::constant(-3)), "-3");
    }
}
