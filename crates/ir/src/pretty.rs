//! Human-readable printing of IR entities, in the paper's notation where
//! one exists (`Check (...)`, `Cond-check ((...), ...)`).

use std::fmt;

use crate::cfg::{BlockId, Function, Program};
use crate::expr::Expr;
use crate::stmt::{Arg, Stmt, Terminator};

/// Pretty-prints an expression with variable names resolved from `f`.
pub fn expr_to_string(f: &Function, e: &Expr) -> String {
    match e {
        Expr::IntConst(v) => v.to_string(),
        Expr::RealConst(r) => r.to_string(),
        Expr::Var(v) => f.vars[v.index()].name.clone(),
        Expr::Unary(op, inner) => match op {
            crate::expr::UnOp::Neg => format!("(-{})", expr_to_string(f, inner)),
            crate::expr::UnOp::Not => format!("(not {})", expr_to_string(f, inner)),
        },
        Expr::Binary(op, l, r) => format!(
            "({} {} {})",
            expr_to_string(f, l),
            op.symbol(),
            expr_to_string(f, r)
        ),
    }
}

/// Pretty-prints one statement.
pub fn stmt_to_string(f: &Function, s: &Stmt) -> String {
    match s {
        Stmt::Assign { var, value } => format!(
            "{} = {}",
            f.vars[var.index()].name,
            expr_to_string(f, value)
        ),
        Stmt::Load { var, array, index } => format!(
            "{} = {}({})",
            f.vars[var.index()].name,
            f.arrays[array.index()].name,
            index
                .iter()
                .map(|e| expr_to_string(f, e))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Stmt::Store {
            array,
            index,
            value,
        } => format!(
            "{}({}) = {}",
            f.arrays[array.index()].name,
            index
                .iter()
                .map(|e| expr_to_string(f, e))
                .collect::<Vec<_>>()
                .join(", "),
            expr_to_string(f, value)
        ),
        Stmt::Check(c) => check_to_string(f, c),
        Stmt::Trap { message } => format!("TRAP \"{message}\""),
        Stmt::Call { callee, args } => format!(
            "call {}({})",
            callee,
            args.iter()
                .map(|a| match a {
                    Arg::Scalar(e) => expr_to_string(f, e),
                    Arg::Array(a) => f.arrays[a.index()].name.clone(),
                })
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Stmt::Emit(e) => format!("emit {}", expr_to_string(f, e)),
    }
}

/// Renders a check (or conditional check) with source-level names, in
/// the paper's notation.
pub fn check_to_string(f: &Function, c: &crate::Check) -> String {
    let one =
        |ce: &crate::CheckExpr| format!("{} <= {}", linform_to_string(f, ce.form()), ce.bound());
    if c.guards.is_empty() {
        format!("Check ({})", one(&c.cond))
    } else {
        let guards = c.guards.iter().map(&one).collect::<Vec<_>>().join(", ");
        format!("Cond-check (({guards}), {})", one(&c.cond))
    }
}

/// Renders a canonical form with source-level variable names.
pub fn linform_to_string(f: &Function, form: &crate::LinForm) -> String {
    let mut out = String::new();
    let mut first = true;
    for (t, c) in form.terms() {
        if first {
            if c < 0 {
                out.push('-');
            }
            first = false;
        } else if c < 0 {
            out.push_str(" - ");
        } else {
            out.push_str(" + ");
        }
        let mag = c.unsigned_abs();
        if mag != 1 {
            out.push_str(&format!("{mag}*"));
        }
        let mut first_atom = true;
        for a in t.atoms() {
            if !first_atom {
                out.push('*');
            }
            first_atom = false;
            match a {
                crate::Atom::Var(v) => out.push_str(&f.vars[v.index()].name),
                crate::Atom::Opaque(e) => {
                    out.push('[');
                    out.push_str(&expr_to_string(f, e));
                    out.push(']');
                }
            }
        }
    }
    if first {
        out.push_str(&form.constant_part().to_string());
    } else if form.constant_part() != 0 {
        if form.constant_part() < 0 {
            out.push_str(&format!(" - {}", form.constant_part().unsigned_abs()));
        } else {
            out.push_str(&format!(" + {}", form.constant_part()));
        }
    }
    out
}

/// Wrapper implementing [`fmt::Display`] for a whole function.
pub struct DisplayFunction<'a>(pub &'a Function);

impl fmt::Display for DisplayFunction<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let f = self.0;
        writeln!(out, "function {} (entry {})", f.name, f.entry)?;
        for (i, a) in f.arrays.iter().enumerate() {
            let dims = a
                .dims
                .iter()
                .map(|(lo, hi)| format!("{}..{}", expr_to_string(f, lo), expr_to_string(f, hi)))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(out, "  {} {}[{}]  ; a{}", a.ty, a.name, dims, i)?;
        }
        for b in f.block_ids() {
            writeln!(out, "{b}:")?;
            for s in &f.block(b).stmts {
                writeln!(out, "    {}", stmt_to_string(f, s))?;
            }
            match &f.block(b).term {
                Terminator::Jump(t) => writeln!(out, "    goto {t}")?,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => writeln!(
                    out,
                    "    if {} goto {then_bb} else {else_bb}",
                    expr_to_string(f, cond)
                )?,
                Terminator::Return => writeln!(out, "    return")?,
            }
        }
        Ok(())
    }
}

/// Wrapper implementing [`fmt::Display`] for a whole program.
pub struct DisplayProgram<'a>(pub &'a Program);

impl fmt::Display for DisplayProgram<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        for f in &self.0.functions {
            writeln!(out, "{}", DisplayFunction(f))?;
        }
        Ok(())
    }
}

/// Lists every check in the function with its block, in the order it
/// appears; convenient for golden tests.
pub fn checks_to_strings(f: &Function) -> Vec<(BlockId, String)> {
    let mut out = Vec::new();
    for b in f.block_ids() {
        for s in &f.block(b).stmts {
            if let Stmt::Check(c) = s {
                out.push((b, c.to_string()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::check::{Check, CheckExpr};
    use crate::expr::Ty;

    #[test]
    fn prints_function() {
        let mut b = FunctionBuilder::new("p");
        let i = b.var("i", Ty::Int);
        let a = b.array("a", Ty::Int, vec![(Expr::int(1), Expr::int(10))]);
        let e = b.entry();
        b.push(e, Stmt::assign(i, Expr::int(3)));
        b.push(
            e,
            Stmt::Check(Check::unconditional(CheckExpr::upper(
                &Expr::var(i),
                &Expr::int(10),
            ))),
        );
        b.push(e, Stmt::store(a, vec![Expr::var(i)], Expr::int(0)));
        let f = b.finish();
        let s = DisplayFunction(&f).to_string();
        assert!(s.contains("i = 3"));
        assert!(s.contains("Check ("));
        assert!(s.contains("a(i) = 0"));
        assert_eq!(checks_to_strings(&f).len(), 1);
    }
}
