//! Canonical range checks (§2.2 of the paper).
//!
//! Every source-level bound test `if (not (subscript <= upper)) TRAP` /
//! `if (not (subscript >= lower)) TRAP` is expressed as
//! `Check (range-expression <= range-constant)`: the range expression holds
//! every symbolic term (in canonical order) and all literal constants fold
//! into the range constant. Lower-bound checks negate both sides first, so a
//! single `<=` shape covers everything.

use std::fmt;

use crate::expr::{BinOp, Expr};
use crate::linform::LinForm;
use crate::stmt::VarId;

/// The canonical inequality `form <= bound`.
///
/// Invariant: `form.constant_part() == 0` — the constructor folds any
/// constant part of the form into the bound.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CheckExpr {
    form: LinForm,
    bound: i64,
}

impl CheckExpr {
    /// Builds the canonical check `form <= bound`, folding the form's
    /// constant part into the bound.
    pub fn new(form: LinForm, bound: i64) -> CheckExpr {
        let c = form.constant_part();
        let mut f = form;
        f.set_constant(0);
        CheckExpr {
            form: f,
            bound: bound.wrapping_sub(c),
        }
    }

    /// Canonicalizes `subscript <= limit` (an upper-bound check): the
    /// symbolic parts of `limit` move to the left with negated sign.
    pub fn upper(subscript: &Expr, limit: &Expr) -> CheckExpr {
        let lhs = LinForm::from_expr(subscript).sub(&LinForm::from_expr(limit));
        CheckExpr::new(lhs, 0)
    }

    /// Canonicalizes `subscript >= limit` (a lower-bound check) by negating
    /// both sides into `-subscript <= -limit` form.
    pub fn lower(subscript: &Expr, limit: &Expr) -> CheckExpr {
        let lhs = LinForm::from_expr(limit).sub(&LinForm::from_expr(subscript));
        CheckExpr::new(lhs, 0)
    }

    /// The (constant-free) range expression.
    pub fn form(&self) -> &LinForm {
        &self.form
    }

    /// The range constant.
    pub fn bound(&self) -> i64 {
        self.bound
    }

    /// The family key: the range expression. Checks in the same family are
    /// totally ordered by their bound (smaller bound = stronger check).
    pub fn family_key(&self) -> &LinForm {
        &self.form
    }

    /// Same check with a different range constant.
    pub fn with_bound(&self, bound: i64) -> CheckExpr {
        CheckExpr {
            form: self.form.clone(),
            bound,
        }
    }

    /// True if the check is a compile-time constant inequality.
    pub fn is_constant(&self) -> bool {
        self.form.is_constant()
    }

    /// For a constant check, whether it holds (`0 <= bound`).
    pub fn constant_verdict(&self) -> Option<bool> {
        if self.is_constant() {
            Some(0 <= self.bound)
        } else {
            None
        }
    }

    /// True if `self` implies `other` *within the same family*:
    /// identical range expression and `self.bound <= other.bound`.
    pub fn implies_in_family(&self, other: &CheckExpr) -> bool {
        self.form == other.form && self.bound <= other.bound
    }

    /// Materializes the check as the boolean expression `form <= bound`.
    pub fn to_expr(&self) -> Expr {
        Expr::bin(BinOp::Le, self.form.to_expr(), Expr::int(self.bound))
    }

    /// Variables whose definitions kill this check.
    pub fn vars(&self) -> Vec<VarId> {
        self.form.vars()
    }
}

impl fmt::Display for CheckExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <= {}", self.form, self.bound)
    }
}

/// A (possibly conditional) range-check statement.
///
/// An empty guard list is an ordinary check. A non-empty list is the
/// paper's `Cond-check ((g₁, …), e <= c)`: the check is performed only when
/// every guard inequality holds (guards arise from hoisting a check past a
/// loop whose trip count is not known to be positive).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Check {
    /// Conjunction of guard inequalities; empty means unconditional.
    pub guards: Vec<CheckExpr>,
    /// The check proper.
    pub cond: CheckExpr,
}

impl Check {
    /// An unconditional check.
    pub fn unconditional(cond: CheckExpr) -> Check {
        Check {
            guards: Vec::new(),
            cond,
        }
    }

    /// A conditional check with the given guards.
    pub fn conditional(guards: Vec<CheckExpr>, cond: CheckExpr) -> Check {
        Check { guards, cond }
    }

    /// True if the check has no guards.
    pub fn is_unconditional(&self) -> bool {
        self.guards.is_empty()
    }

    /// All variables referenced by guards or the check itself.
    pub fn vars(&self) -> Vec<VarId> {
        let mut vs = self.cond.vars();
        for g in &self.guards {
            vs.extend(g.vars());
        }
        vs.sort();
        vs.dedup();
        vs
    }

    /// Dynamic-instruction cost of evaluating the guards (the check proper
    /// is counted in the dynamic check counter instead).
    pub fn guard_cost(&self) -> u64 {
        self.guards.len() as u64
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.guards.is_empty() {
            write!(f, "Check ({})", self.cond)
        } else {
            write!(f, "Cond-check ((")?;
            for (i, g) in self.guards.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
            write!(f, "), {})", self.cond)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn paper_upper_example() {
        // if (not (i+1 <= 4*N)) TRAP  ==>  Check (i - 4*N <= -1)
        let c = CheckExpr::upper(
            &Expr::add(Expr::var(v(0)), Expr::int(1)),
            &Expr::mul(Expr::int(4), Expr::var(v(1))),
        );
        assert_eq!(c.bound(), -1);
        assert_eq!(c.form().coeff_of_var(v(0)), 1);
        assert_eq!(c.form().coeff_of_var(v(1)), -4);
    }

    #[test]
    fn paper_lower_example() {
        // if (not (i+1 >= 4)) TRAP  ==>  Check (-i <= -3)
        let c = CheckExpr::lower(&Expr::add(Expr::var(v(0)), Expr::int(1)), &Expr::int(4));
        assert_eq!(c.bound(), -3);
        assert_eq!(c.form().coeff_of_var(v(0)), -1);
    }

    #[test]
    fn figure1_same_family() {
        // Check (2*N <= 10) and Check (2*N - 1 <= 10) share a family;
        // the former (bound 10) is stronger than the latter (bound 11).
        let c2 = CheckExpr::upper(&Expr::mul(Expr::int(2), Expr::var(v(0))), &Expr::int(10));
        let c4 = CheckExpr::upper(
            &Expr::sub(Expr::mul(Expr::int(2), Expr::var(v(0))), Expr::int(1)),
            &Expr::int(10),
        );
        assert_eq!(c2.family_key(), c4.family_key());
        assert!(c2.implies_in_family(&c4));
        assert!(!c4.implies_in_family(&c2));
        assert_eq!(c2.bound(), 10);
        assert_eq!(c4.bound(), 11);
    }

    #[test]
    fn figure1_lower_family() {
        // C1: 2*N >= 5  -> -2N <= -5 ;  C3: 2*N-1 >= 5 -> -2N <= -6
        let c1 = CheckExpr::lower(&Expr::mul(Expr::int(2), Expr::var(v(0))), &Expr::int(5));
        let c3 = CheckExpr::lower(
            &Expr::sub(Expr::mul(Expr::int(2), Expr::var(v(0))), Expr::int(1)),
            &Expr::int(5),
        );
        assert_eq!(c1.family_key(), c3.family_key());
        assert!(c3.implies_in_family(&c1));
        assert_eq!(c1.bound(), -5);
        assert_eq!(c3.bound(), -6);
    }

    #[test]
    fn constant_checks_fold() {
        let ok = CheckExpr::upper(&Expr::int(3), &Expr::int(10));
        assert_eq!(ok.constant_verdict(), Some(true));
        let bad = CheckExpr::upper(&Expr::int(30), &Expr::int(10));
        assert_eq!(bad.constant_verdict(), Some(false));
        let sym = CheckExpr::upper(&Expr::var(v(0)), &Expr::int(10));
        assert_eq!(sym.constant_verdict(), None);
    }

    #[test]
    fn display_matches_paper_style() {
        let c = CheckExpr::lower(&Expr::var(v(0)), &Expr::int(3));
        assert_eq!(
            format!("{}", Check::unconditional(c.clone())),
            "Check (-v0 <= -3)"
        );
        let g = CheckExpr::upper(&Expr::int(1), &Expr::var(v(1)));
        let cc = Check::conditional(vec![g], c);
        assert!(format!("{cc}").starts_with("Cond-check (("));
    }

    #[test]
    fn to_expr_is_le() {
        let c = CheckExpr::upper(&Expr::var(v(0)), &Expr::int(9));
        match c.to_expr() {
            Expr::Binary(BinOp::Le, _, rhs) => assert_eq!(rhs.as_int(), Some(9)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
