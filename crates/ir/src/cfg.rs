//! Control-flow graph: blocks, functions and programs.

use std::fmt;

use crate::stmt::{ArrayInfo, FuncId, Param, Stmt, Terminator, VarInfo};

/// Index of a basic block within its [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A basic block: straight-line statements plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The statements, executed in order.
    pub stmts: Vec<Stmt>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl Block {
    /// An empty block jumping to `target`.
    pub fn jumping_to(target: BlockId) -> Block {
        Block {
            stmts: Vec::new(),
            term: Terminator::Jump(target),
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Block {
            stmts: Vec::new(),
            term: Terminator::Return,
        }
    }
}

/// A function: scalar variables, arrays, parameters and a CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Source-level name.
    pub name: String,
    /// Formal parameters, in call order.
    pub params: Vec<Param>,
    /// Scalar variable table.
    pub vars: Vec<VarInfo>,
    /// Array table.
    pub arrays: Vec<ArrayInfo>,
    /// Basic blocks; [`BlockId`] indexes into this vector.
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
}

impl Function {
    /// Creates an empty function with a single `Return` block as entry.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            params: Vec::new(),
            vars: Vec::new(),
            arrays: Vec::new(),
            blocks: vec![Block::default()],
            entry: BlockId(0),
        }
    }

    /// Shared access to a block.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Appends a fresh block and returns its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(block);
        id
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Successors of `b` in branch order.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        self.block(b).term.successors()
    }

    /// Predecessor lists for every block, indexed by block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Blocks reachable from entry, in reverse post-order.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // iterative DFS with explicit successor cursor
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(frame) = stack.last_mut() {
            let b = frame.0;
            let succs = self.successors(b);
            if frame.1 < succs.len() {
                let s = succs[frame.1];
                frame.1 += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Splits the CFG edge `from -> to`, inserting and returning a fresh
    /// empty block on the edge. All other edges are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `from -> to` is not an edge.
    pub fn split_edge(&mut self, from: BlockId, to: BlockId) -> BlockId {
        assert!(
            self.successors(from).contains(&to),
            "split_edge: {from} -> {to} is not an edge"
        );
        let mid = self.add_block(Block::jumping_to(to));
        self.block_mut(from).term.retarget(to, mid);
        mid
    }

    /// Total number of statements across all blocks.
    pub fn stmt_count(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len()).sum()
    }

    /// Number of `Check` statements across all blocks.
    pub fn check_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.stmts.iter().filter(|s| s.is_check()).count())
            .sum()
    }
}

/// A whole program: functions plus the designated main function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// All functions; [`FuncId`] indexes into this vector.
    pub functions: Vec<Function>,
    /// The entry function.
    pub main: FuncId,
}

impl Program {
    /// A program with a single main function.
    pub fn single(f: Function) -> Program {
        Program {
            functions: vec![f],
            main: FuncId(0),
        }
    }

    /// Shared access to a function.
    pub fn function(&self, f: FuncId) -> &Function {
        &self.functions[f.index()]
    }

    /// Mutable access to a function.
    pub fn function_mut(&mut self, f: FuncId) -> &mut Function {
        &mut self.functions[f.index()]
    }

    /// The main function.
    pub fn main_function(&self) -> &Function {
        self.function(self.main)
    }

    /// Total static statement count.
    pub fn stmt_count(&self) -> usize {
        self.functions.iter().map(Function::stmt_count).sum()
    }

    /// Total static check count.
    pub fn check_count(&self) -> usize {
        self.functions.iter().map(Function::check_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn diamond() -> Function {
        let mut f = Function::new("d");
        // entry(0) -> {1, 2} -> 3(return)
        let b3 = f.add_block(Block::default());
        let b1 = f.add_block(Block::jumping_to(b3));
        let b2 = f.add_block(Block::jumping_to(b3));
        f.block_mut(BlockId(0)).term = Terminator::Branch {
            cond: Expr::int(1),
            then_bb: b1,
            else_bb: b2,
        };
        f
    }

    #[test]
    fn preds_and_succs() {
        let f = diamond();
        assert_eq!(f.successors(BlockId(0)), vec![BlockId(2), BlockId(3)]);
        let preds = f.predecessors();
        assert_eq!(preds[1].len(), 2); // join block
        assert!(preds[0].is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        // join block last
        assert_eq!(*rpo.last().unwrap(), BlockId(1));
    }

    #[test]
    fn split_edge_preserves_paths() {
        let mut f = diamond();
        let n_before = f.blocks.len();
        let mid = f.split_edge(BlockId(0), BlockId(2));
        assert_eq!(f.blocks.len(), n_before + 1);
        assert!(f.successors(BlockId(0)).contains(&mid));
        assert_eq!(f.successors(mid), vec![BlockId(2)]);
        // other edge untouched
        assert!(f.successors(BlockId(0)).contains(&BlockId(3)));
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn split_non_edge_panics() {
        let mut f = diamond();
        f.split_edge(BlockId(1), BlockId(2));
    }
}
