//! Structural validation of IR, used as a sanity gate by tests and after
//! every optimizer transformation.

use std::fmt;

use crate::cfg::{Function, Program};
use crate::expr::Expr;
use crate::stmt::{Arg, Stmt, VarId};

/// A structural defect found by [`validate_function`] or
/// [`validate_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Function name.
    pub function: String,
    /// Human-readable description of the defect.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in function {}: {}", self.function, self.message)
    }
}

impl std::error::Error for ValidateError {}

fn check_expr_vars(f: &Function, e: &Expr, errs: &mut Vec<ValidateError>, ctx: &str) {
    for v in e.vars() {
        if v.index() >= f.vars.len() {
            errs.push(ValidateError {
                function: f.name.clone(),
                message: format!("{ctx}: variable {v} out of range"),
            });
        }
    }
}

fn check_var(f: &Function, v: VarId, errs: &mut Vec<ValidateError>, ctx: &str) {
    if v.index() >= f.vars.len() {
        errs.push(ValidateError {
            function: f.name.clone(),
            message: format!("{ctx}: variable {v} out of range"),
        });
    }
}

/// Validates one function: block targets in range, entry valid, every
/// variable/array reference within the declared tables, array arities
/// matching their ranks.
pub fn validate_function(f: &Function) -> Vec<ValidateError> {
    let mut errs = Vec::new();
    if f.entry.index() >= f.blocks.len() {
        errs.push(ValidateError {
            function: f.name.clone(),
            message: format!("entry block {} out of range", f.entry),
        });
        return errs;
    }
    for b in f.block_ids() {
        for s in f.successors(b) {
            if s.index() >= f.blocks.len() {
                errs.push(ValidateError {
                    function: f.name.clone(),
                    message: format!("{b} branches to out-of-range {s}"),
                });
            }
        }
        for (si, stmt) in f.block(b).stmts.iter().enumerate() {
            let ctx = format!("{b}[{si}]");
            match stmt {
                Stmt::Assign { var, value } => {
                    check_var(f, *var, &mut errs, &ctx);
                    check_expr_vars(f, value, &mut errs, &ctx);
                }
                Stmt::Load { var, array, index } => {
                    check_var(f, *var, &mut errs, &ctx);
                    if array.index() >= f.arrays.len() {
                        errs.push(ValidateError {
                            function: f.name.clone(),
                            message: format!("{ctx}: array {array} out of range"),
                        });
                    } else if f.arrays[array.index()].rank() != index.len() {
                        errs.push(ValidateError {
                            function: f.name.clone(),
                            message: format!(
                                "{ctx}: array {} rank {} used with {} subscripts",
                                f.arrays[array.index()].name,
                                f.arrays[array.index()].rank(),
                                index.len()
                            ),
                        });
                    }
                    for e in index {
                        check_expr_vars(f, e, &mut errs, &ctx);
                    }
                }
                Stmt::Store {
                    array,
                    index,
                    value,
                } => {
                    if array.index() >= f.arrays.len() {
                        errs.push(ValidateError {
                            function: f.name.clone(),
                            message: format!("{ctx}: array {array} out of range"),
                        });
                    } else if f.arrays[array.index()].rank() != index.len() {
                        errs.push(ValidateError {
                            function: f.name.clone(),
                            message: format!(
                                "{ctx}: array {} rank {} used with {} subscripts",
                                f.arrays[array.index()].name,
                                f.arrays[array.index()].rank(),
                                index.len()
                            ),
                        });
                    }
                    for e in index {
                        check_expr_vars(f, e, &mut errs, &ctx);
                    }
                    check_expr_vars(f, value, &mut errs, &ctx);
                }
                Stmt::Check(c) => {
                    for v in c.vars() {
                        check_var(f, v, &mut errs, &ctx);
                    }
                }
                Stmt::Trap { .. } => {}
                Stmt::Call { args, .. } => {
                    for a in args {
                        match a {
                            Arg::Scalar(e) => check_expr_vars(f, e, &mut errs, &ctx),
                            Arg::Array(id) => {
                                if id.index() >= f.arrays.len() {
                                    errs.push(ValidateError {
                                        function: f.name.clone(),
                                        message: format!("{ctx}: array arg {id} out of range"),
                                    });
                                }
                            }
                        }
                    }
                }
                Stmt::Emit(e) => check_expr_vars(f, e, &mut errs, &ctx),
            }
        }
    }
    errs
}

/// Validates every function plus call-site arity and callee ids.
pub fn validate_program(p: &Program) -> Vec<ValidateError> {
    let mut errs = Vec::new();
    if p.main.index() >= p.functions.len() {
        errs.push(ValidateError {
            function: "<program>".into(),
            message: "main function id out of range".into(),
        });
        return errs;
    }
    for f in &p.functions {
        errs.extend(validate_function(f));
        for b in f.block_ids() {
            for stmt in &f.block(b).stmts {
                if let Stmt::Call { callee, args } = stmt {
                    if callee.index() >= p.functions.len() {
                        errs.push(ValidateError {
                            function: f.name.clone(),
                            message: format!("call to out-of-range function {callee}"),
                        });
                    } else {
                        let target = p.function(*callee);
                        if target.params.len() != args.len() {
                            errs.push(ValidateError {
                                function: f.name.clone(),
                                message: format!(
                                    "call to {} passes {} args, expected {}",
                                    target.name,
                                    args.len(),
                                    target.params.len()
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    errs
}

/// Panics with a readable report if the program is structurally invalid.
/// Intended for tests and post-transformation assertions.
pub fn assert_valid(p: &Program) {
    let errs = validate_program(p);
    assert!(
        errs.is_empty(),
        "invalid program:\n{}",
        errs.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::cfg::BlockId;
    use crate::expr::Ty;
    use crate::stmt::Terminator;

    #[test]
    fn valid_function_passes() {
        let mut b = FunctionBuilder::new("ok");
        let i = b.var("i", Ty::Int);
        let e = b.entry();
        b.push(e, Stmt::assign(i, Expr::int(1)));
        b.terminate(e, Terminator::Return);
        assert!(validate_function(&b.finish()).is_empty());
    }

    #[test]
    fn detects_out_of_range_var() {
        let mut b = FunctionBuilder::new("bad");
        let e = b.entry();
        b.push(e, Stmt::assign(VarId(7), Expr::int(1)));
        let errs = validate_function(&b.finish());
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("out of range"));
    }

    #[test]
    fn detects_bad_branch_target() {
        let mut b = FunctionBuilder::new("bad");
        let e = b.entry();
        b.terminate(e, Terminator::Jump(BlockId(99)));
        let errs = validate_function(&b.finish());
        assert_eq!(errs.len(), 1);
    }

    #[test]
    fn detects_rank_mismatch() {
        let mut b = FunctionBuilder::new("bad");
        let a = b.array(
            "a",
            Ty::Int,
            vec![(Expr::int(1), Expr::int(5)), (Expr::int(1), Expr::int(5))],
        );
        let e = b.entry();
        b.push(e, Stmt::store(a, vec![Expr::int(1)], Expr::int(0)));
        b.terminate(e, Terminator::Return);
        let errs = validate_function(&b.finish());
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("rank"));
    }
}
