//! Side-effect-free tree expressions.
//!
//! Expressions never contain array accesses: the frontend flattens array
//! reads into [`Stmt::Load`](crate::Stmt::Load) statements so that range
//! checks are always statement-level objects that the optimizer can move.

use std::fmt;

use crate::stmt::VarId;

/// Scalar type of a variable or array element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ty {
    /// 64-bit signed integer (Fortran `integer`).
    Int,
    /// 64-bit float (Fortran `real` / `double precision`).
    Real,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "integer"),
            Ty::Real => write!(f, "real"),
        }
    }
}

/// A totally ordered wrapper for `f64` literals.
///
/// Stores the bit pattern so that [`Expr`] can derive `Eq`, `Ord` and
/// `Hash` (needed because expressions are used as opaque atoms inside
/// canonical [`LinForm`](crate::LinForm)s). Ordering is IEEE `total_cmp`
/// order of the encoded value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct R64(u64);

impl R64 {
    /// Wraps a float.
    pub fn new(v: f64) -> Self {
        R64(v.to_bits())
    }

    /// Returns the wrapped float.
    pub fn value(self) -> f64 {
        f64::from_bits(self.0)
    }
}

impl From<f64> for R64 {
    fn from(v: f64) -> Self {
        R64::new(v)
    }
}

impl PartialOrd for R64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for R64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.value().total_cmp(&other.value())
    }
}

impl fmt::Display for R64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation (operand is 0/1 integer).
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Integer division truncates toward zero (Fortran semantics).
    Div,
    /// Remainder with the sign of the dividend.
    Mod,
    Min,
    Max,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// The comparison with swapped operands, e.g. `<` becomes `>`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a comparison.
    pub fn swapped(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            BinOp::Eq => BinOp::Eq,
            BinOp::Ne => BinOp::Ne,
            other => panic!("swapped() on non-comparison {other:?}"),
        }
    }

    /// Symbol used by the pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "mod",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// A side-effect-free expression tree.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// Integer literal.
    IntConst(i64),
    /// Real literal (bit-encoded for total ordering).
    RealConst(R64),
    /// Scalar variable reference.
    Var(VarId),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Integer literal constructor.
    pub fn int(v: i64) -> Expr {
        Expr::IntConst(v)
    }

    /// Real literal constructor.
    pub fn real(v: f64) -> Expr {
        Expr::RealConst(R64::new(v))
    }

    /// Variable reference constructor.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// Builds a binary expression.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// `lhs + rhs`.
    #[allow(clippy::should_implement_trait)] // static constructor, not `self + rhs`
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, lhs, rhs)
    }

    /// Arithmetic negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(e: Expr) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(e))
    }

    /// Returns the integer literal value if this is an `IntConst`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::IntConst(v) => Some(*v),
            _ => None,
        }
    }

    /// Collects the variables referenced by the expression into `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::IntConst(_) | Expr::RealConst(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Binary(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }

    /// The variables referenced by the expression (may contain duplicates).
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// True if the expression references `v`.
    pub fn uses_var(&self, v: VarId) -> bool {
        match self {
            Expr::IntConst(_) | Expr::RealConst(_) => false,
            Expr::Var(w) => *w == v,
            Expr::Unary(_, e) => e.uses_var(v),
            Expr::Binary(_, l, r) => l.uses_var(v) || r.uses_var(v),
        }
    }

    /// Number of operator nodes; the dynamic-instruction cost model charges
    /// one instruction per operator (literals and variable reads are free,
    /// matching a naive translation where they fold into operand fields).
    pub fn cost(&self) -> u64 {
        match self {
            Expr::IntConst(_) | Expr::RealConst(_) | Expr::Var(_) => 0,
            Expr::Unary(_, e) => 1 + e.cost(),
            Expr::Binary(_, l, r) => 1 + l.cost() + r.cost(),
        }
    }

    /// Substitutes `replacement` for every occurrence of variable `v`.
    pub fn substitute(&self, v: VarId, replacement: &Expr) -> Expr {
        match self {
            Expr::IntConst(_) | Expr::RealConst(_) => self.clone(),
            Expr::Var(w) => {
                if *w == v {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.substitute(v, replacement))),
            Expr::Binary(op, l, r) => Expr::Binary(
                *op,
                Box::new(l.substitute(v, replacement)),
                Box::new(r.substitute(v, replacement)),
            ),
        }
    }

    /// Folds integer-constant subtrees bottom-up. Division/modulo by zero is
    /// left unfolded (it is a run-time matter for the interpreter).
    pub fn fold(&self) -> Expr {
        match self {
            Expr::IntConst(_) | Expr::RealConst(_) | Expr::Var(_) => self.clone(),
            Expr::Unary(op, e) => {
                let e = e.fold();
                if let Expr::IntConst(v) = e {
                    match op {
                        UnOp::Neg => return Expr::IntConst(v.wrapping_neg()),
                        UnOp::Not => return Expr::IntConst(i64::from(v == 0)),
                    }
                }
                Expr::Unary(*op, Box::new(e))
            }
            Expr::Binary(op, l, r) => {
                let l = l.fold();
                let r = r.fold();
                if let (Expr::IntConst(a), Expr::IntConst(b)) = (&l, &r) {
                    if let Some(v) = eval_int_binop(*op, *a, *b) {
                        return Expr::IntConst(v);
                    }
                }
                Expr::Binary(*op, Box::new(l), Box::new(r))
            }
        }
    }
}

/// Evaluates an integer binary operation, returning `None` on division or
/// remainder by zero (and on `Min`/`Max` never — those always succeed).
///
/// `#[inline]` so both execution engines can fold it into their dispatch
/// loops across the crate boundary.
#[inline]
pub fn eval_int_binop(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Mod => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::And => i64::from(a != 0 && b != 0),
        BinOp::Or => i64::from(a != 0 || b != 0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_constants() {
        let e = Expr::add(Expr::int(2), Expr::mul(Expr::int(3), Expr::int(4)));
        assert_eq!(e.fold(), Expr::int(14));
    }

    #[test]
    fn fold_leaves_div_by_zero() {
        let e = Expr::bin(BinOp::Div, Expr::int(1), Expr::int(0));
        assert_eq!(e.fold(), e);
    }

    #[test]
    fn cost_counts_operators() {
        let v = VarId(0);
        let e = Expr::add(Expr::var(v), Expr::mul(Expr::int(3), Expr::var(v)));
        assert_eq!(e.cost(), 2);
        assert_eq!(Expr::int(5).cost(), 0);
    }

    #[test]
    fn substitute_replaces_all_occurrences() {
        let v = VarId(0);
        let e = Expr::add(Expr::var(v), Expr::var(v));
        let s = e.substitute(v, &Expr::int(7));
        assert_eq!(s.fold(), Expr::int(14));
    }

    #[test]
    fn vars_are_collected() {
        let v = VarId(3);
        let w = VarId(5);
        let e = Expr::sub(Expr::var(v), Expr::neg(Expr::var(w)));
        let mut vs = e.vars();
        vs.sort();
        assert_eq!(vs, vec![v, w]);
        assert!(e.uses_var(v));
        assert!(!e.uses_var(VarId(9)));
    }

    #[test]
    fn r64_total_order() {
        assert!(R64::new(1.0) < R64::new(2.0));
        assert_eq!(R64::new(0.5).value(), 0.5);
    }

    #[test]
    fn swapped_comparisons() {
        assert_eq!(BinOp::Lt.swapped(), BinOp::Gt);
        assert_eq!(BinOp::Ge.swapped(), BinOp::Le);
        assert_eq!(BinOp::Eq.swapped(), BinOp::Eq);
    }

    #[test]
    fn int_binop_semantics() {
        assert_eq!(eval_int_binop(BinOp::Div, -7, 2), Some(-3)); // trunc toward zero
        assert_eq!(eval_int_binop(BinOp::Mod, -7, 2), Some(-1));
        assert_eq!(eval_int_binop(BinOp::Div, 1, 0), None);
        assert_eq!(eval_int_binop(BinOp::Max, 3, 9), Some(9));
        assert_eq!(eval_int_binop(BinOp::And, 2, 0), Some(0));
    }
}
