//! Programmatic construction of functions and programs, used by tests,
//! examples and the benchmark harness when a source-level program would be
//! overkill.

use crate::cfg::{Block, BlockId, Function, Program};
use crate::expr::{Expr, Ty};
use crate::stmt::{ArrayId, ArrayInfo, FuncId, Param, Stmt, Terminator, VarId, VarInfo};

/// Incremental builder for a single [`Function`].
///
/// # Example
///
/// ```
/// use nascent_ir::{FunctionBuilder, Ty, Expr, Stmt, Terminator};
///
/// let mut b = FunctionBuilder::new("f");
/// let i = b.var("i", Ty::Int);
/// let entry = b.entry();
/// b.push(entry, Stmt::assign(i, Expr::int(0)));
/// b.terminate(entry, Terminator::Return);
/// let f = b.finish();
/// assert_eq!(f.vars.len(), 1);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
}

impl FunctionBuilder {
    /// Starts a function with an empty entry block.
    pub fn new(name: impl Into<String>) -> FunctionBuilder {
        FunctionBuilder {
            func: Function::new(name),
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        self.func.entry
    }

    /// Declares a scalar variable.
    pub fn var(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        let id = VarId(self.func.vars.len() as u32);
        self.func.vars.push(VarInfo {
            name: name.into(),
            ty,
        });
        id
    }

    /// Declares an array with `(lower, upper)` bounds per dimension.
    pub fn array(&mut self, name: impl Into<String>, ty: Ty, dims: Vec<(Expr, Expr)>) -> ArrayId {
        let id = ArrayId(self.func.arrays.len() as u32);
        self.func.arrays.push(ArrayInfo {
            name: name.into(),
            ty,
            dims,
        });
        id
    }

    /// Marks a previously declared variable as a by-value scalar parameter.
    pub fn scalar_param(&mut self, v: VarId) {
        self.func.params.push(Param::Scalar(v));
    }

    /// Marks a previously declared array as a by-reference parameter.
    pub fn array_param(&mut self, a: ArrayId) {
        self.func.params.push(Param::Array(a));
    }

    /// Adds a fresh block (default terminator `Return`).
    pub fn block(&mut self) -> BlockId {
        self.func.add_block(Block::default())
    }

    /// Appends a statement to a block.
    pub fn push(&mut self, b: BlockId, stmt: Stmt) {
        self.func.block_mut(b).stmts.push(stmt);
    }

    /// Sets a block's terminator.
    pub fn terminate(&mut self, b: BlockId, term: Terminator) {
        self.func.block_mut(b).term = term;
    }

    /// Shorthand: terminate with an unconditional jump.
    pub fn jump(&mut self, from: BlockId, to: BlockId) {
        self.terminate(from, Terminator::Jump(to));
    }

    /// Shorthand: terminate with a branch.
    pub fn branch(&mut self, from: BlockId, cond: Expr, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(
            from,
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            },
        );
    }

    /// Builds a counted loop `for var = lo..=hi` around the blocks produced
    /// by `body`, wiring `current` to the loop and returning the exit block.
    ///
    /// The body callback receives the builder and the first body block and
    /// must return the last body block (whose terminator is overwritten to
    /// jump to the latch).
    pub fn counted_loop(
        &mut self,
        current: BlockId,
        var: VarId,
        lo: Expr,
        hi: Expr,
        body: impl FnOnce(&mut FunctionBuilder, BlockId) -> BlockId,
    ) -> BlockId {
        let header = self.block();
        let body_bb = self.block();
        let exit = self.block();
        self.push(current, Stmt::assign(var, lo));
        self.jump(current, header);
        self.branch(
            header,
            Expr::bin(crate::expr::BinOp::Le, Expr::var(var), hi),
            body_bb,
            exit,
        );
        let last = body(self, body_bb);
        let latch = self.block();
        self.jump(last, latch);
        self.push(
            latch,
            Stmt::assign(var, Expr::add(Expr::var(var), Expr::int(1))),
        );
        self.jump(latch, header);
        exit
    }

    /// Finishes the function.
    pub fn finish(self) -> Function {
        self.func
    }
}

/// Builder for multi-function [`Program`]s with by-name call resolution.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Function>,
}

impl ProgramBuilder {
    /// An empty program builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Adds a function, returning its id.
    pub fn add(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// Looks up a function id by name.
    pub fn lookup(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Finishes the program with `main` as entry.
    ///
    /// # Panics
    ///
    /// Panics if `main` is out of range.
    pub fn finish(self, main: FuncId) -> Program {
        assert!(main.index() < self.functions.len(), "bad main id");
        Program {
            functions: self.functions,
            main,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_loop_shape() {
        let mut b = FunctionBuilder::new("loops");
        let i = b.var("i", Ty::Int);
        let x = b.var("x", Ty::Int);
        let entry = b.entry();
        let exit = b.counted_loop(entry, i, Expr::int(1), Expr::int(10), |b, body| {
            b.push(body, Stmt::assign(x, Expr::var(i)));
            body
        });
        b.terminate(exit, Terminator::Return);
        let f = b.finish();
        // entry, header, body, exit, latch
        assert_eq!(f.blocks.len(), 5);
        let rpo = f.reverse_postorder();
        assert_eq!(rpo.len(), 5);
    }

    #[test]
    fn program_builder_lookup() {
        let mut pb = ProgramBuilder::new();
        let main = pb.add(Function::new("main"));
        pb.add(Function::new("helper"));
        assert_eq!(pb.lookup("helper"), Some(FuncId(1)));
        assert_eq!(pb.lookup("nope"), None);
        let p = pb.finish(main);
        assert_eq!(p.main_function().name, "main");
    }
}
