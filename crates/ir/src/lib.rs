//! Mid-level intermediate representation for the `nascent-rc` range-check
//! optimizer, a reproduction of Kolte & Wolfe, *Elimination of Redundant
//! Array Subscript Range Checks* (PLDI 1995).
//!
//! The IR is a conventional control-flow graph of basic blocks holding
//! side-effect-free tree expressions and three-address-style statements.
//! Array accesses are statements (never sub-expressions) so that range
//! checks can be placed immediately before them, exactly as the paper's
//! Nascent compiler does.
//!
//! The crate also defines the *canonical form* of range checks from §2.2 of
//! the paper: a [`LinForm`] is a multilinear polynomial over program
//! variables (plus opaque atoms for non-affine subexpressions) with all
//! literal constants folded out, and a [`CheckExpr`] is the canonical
//! `range-expression <= range-constant` inequality.
//!
//! # Example
//!
//! ```
//! use nascent_ir::{FunctionBuilder, Ty, Expr, Terminator, Stmt};
//!
//! let mut b = FunctionBuilder::new("demo");
//! let n = b.var("n", Ty::Int);
//! let a = b.array("a", Ty::Int, vec![(Expr::int(1), Expr::int(10))]);
//! let entry = b.entry();
//! b.push(entry, Stmt::assign(n, Expr::int(4)));
//! b.push(entry, Stmt::store(a, vec![Expr::var(n)], Expr::int(7)));
//! b.terminate(entry, Terminator::Return);
//! let f = b.finish();
//! assert_eq!(f.blocks.len(), 1);
//! ```

pub mod builder;
pub mod cfg;
pub mod check;
pub mod expr;
pub mod linform;
pub mod pretty;
pub mod stmt;
pub mod validate;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use cfg::{Block, BlockId, Function, Program};
pub use check::{Check, CheckExpr};
pub use expr::{BinOp, Expr, Ty, UnOp, R64};
pub use linform::{Atom, LinForm, Term};
pub use stmt::{Arg, ArrayId, ArrayInfo, FuncId, Param, Stmt, Terminator, VarId, VarInfo};
