//! Statements, terminators and the entities they reference.

use std::fmt;

use crate::check::Check;
use crate::expr::{Expr, Ty};

/// Index of a scalar variable within its [`Function`](crate::Function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable's index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of an array within its [`Function`](crate::Function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// The array's index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Index of a function within its [`Program`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The function's index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Metadata for a scalar variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Source-level name (synthetic temporaries use a `%` prefix).
    pub name: String,
    /// Scalar type.
    pub ty: Ty,
}

/// Metadata for an array, including its declared bounds per dimension.
///
/// Bounds may be symbolic expressions (Fortran adjustable arrays); the
/// interpreter evaluates them once on function entry and the optimizer
/// canonicalizes them into check range-expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// Source-level name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// `(lower, upper)` declared bounds, one pair per dimension.
    pub dims: Vec<(Expr, Expr)>,
}

impl ArrayInfo {
    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

/// A formal parameter: scalars are passed by value, arrays by reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Param {
    /// Scalar parameter, bound to the given local variable.
    Scalar(VarId),
    /// Array parameter, bound to the given local array slot.
    Array(ArrayId),
}

/// An actual argument at a call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arg {
    /// Scalar argument evaluated in the caller.
    Scalar(Expr),
    /// Caller array passed by reference.
    Array(ArrayId),
}

/// A statement within a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var := value`.
    Assign { var: VarId, value: Expr },
    /// `var := array(index...)` — one scalar read from an array.
    Load {
        var: VarId,
        array: ArrayId,
        index: Vec<Expr>,
    },
    /// `array(index...) := value`.
    Store {
        array: ArrayId,
        index: Vec<Expr>,
        value: Expr,
    },
    /// A range check (possibly conditional); traps when it fails.
    Check(Check),
    /// Unconditional trap, produced when a check is proven false at compile
    /// time (§3, step 5 of the paper).
    Trap { message: String },
    /// Call a subroutine. Scalars by value, arrays by reference.
    Call { callee: FuncId, args: Vec<Arg> },
    /// Append a value to the program's observable output stream.
    Emit(Expr),
}

impl Stmt {
    /// Convenience constructor for [`Stmt::Assign`].
    pub fn assign(var: VarId, value: Expr) -> Stmt {
        Stmt::Assign { var, value }
    }

    /// Convenience constructor for [`Stmt::Load`].
    pub fn load(var: VarId, array: ArrayId, index: Vec<Expr>) -> Stmt {
        Stmt::Load { var, array, index }
    }

    /// Convenience constructor for [`Stmt::Store`].
    pub fn store(array: ArrayId, index: Vec<Expr>, value: Expr) -> Stmt {
        Stmt::Store {
            array,
            index,
            value,
        }
    }

    /// The scalar variable this statement defines, if any.
    ///
    /// Calls define nothing in the caller: scalars are passed by value and
    /// checks never mention array contents, so a call kills no checks.
    pub fn defined_var(&self) -> Option<VarId> {
        match self {
            Stmt::Assign { var, .. } | Stmt::Load { var, .. } => Some(*var),
            _ => None,
        }
    }

    /// True if this is a [`Stmt::Check`].
    pub fn is_check(&self) -> bool {
        matches!(self, Stmt::Check(_))
    }

    /// Dynamic-instruction cost of executing this statement once, excluding
    /// range checks (which are counted separately, following Table 1 of the
    /// paper). Loads and stores charge their subscript arithmetic, one
    /// address computation per extra dimension, and the memory operation.
    pub fn cost(&self) -> u64 {
        match self {
            Stmt::Assign { value, .. } => value.cost() + 1,
            Stmt::Load { index, .. }
            | Stmt::Store {
                index, value: _, ..
            } => {
                let idx: u64 = index.iter().map(Expr::cost).sum();
                let addr = index.len().saturating_sub(1) as u64;
                let val = if let Stmt::Store { value, .. } = self {
                    value.cost()
                } else {
                    0
                };
                idx + addr + val + 1
            }
            Stmt::Check(_) | Stmt::Trap { .. } => 0,
            Stmt::Call { args, .. } => {
                1 + args
                    .iter()
                    .map(|a| match a {
                        Arg::Scalar(e) => e.cost(),
                        Arg::Array(_) => 0,
                    })
                    .sum::<u64>()
            }
            Stmt::Emit(e) => e.cost() + 1,
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(crate::cfg::BlockId),
    /// Two-way branch on a (0/1 integer) condition.
    Branch {
        cond: Expr,
        then_bb: crate::cfg::BlockId,
        else_bb: crate::cfg::BlockId,
    },
    /// Return from the function.
    Return,
}

impl Terminator {
    /// Successor blocks, in branch order.
    pub fn successors(&self) -> Vec<crate::cfg::BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return => vec![],
        }
    }

    /// Dynamic-instruction cost: condition evaluation plus the branch.
    pub fn cost(&self) -> u64 {
        match self {
            Terminator::Jump(_) => 1,
            Terminator::Branch { cond, .. } => cond.cost() + 1,
            Terminator::Return => 1,
        }
    }

    /// Rewrites every successor equal to `from` into `to`.
    pub fn retarget(&mut self, from: crate::cfg::BlockId, to: crate::cfg::BlockId) {
        match self {
            Terminator::Jump(b) => {
                if *b == from {
                    *b = to;
                }
            }
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                if *then_bb == from {
                    *then_bb = to;
                }
                if *else_bb == from {
                    *else_bb = to;
                }
            }
            Terminator::Return => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::BlockId;

    #[test]
    fn defined_var() {
        let s = Stmt::assign(VarId(2), Expr::int(1));
        assert_eq!(s.defined_var(), Some(VarId(2)));
        let s = Stmt::store(ArrayId(0), vec![Expr::int(1)], Expr::int(2));
        assert_eq!(s.defined_var(), None);
    }

    #[test]
    fn costs() {
        let s = Stmt::assign(VarId(0), Expr::add(Expr::int(1), Expr::int(2)));
        assert_eq!(s.cost(), 2);
        let s = Stmt::store(
            ArrayId(0),
            vec![Expr::var(VarId(0)), Expr::var(VarId(1))],
            Expr::int(0),
        );
        assert_eq!(s.cost(), 2); // one address op + the store
        assert_eq!(Terminator::Return.cost(), 1);
    }

    #[test]
    fn retarget_rewrites_successors() {
        let mut t = Terminator::Branch {
            cond: Expr::int(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        t.retarget(BlockId(2), BlockId(5));
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(5)]);
    }
}
