//! Property-based tests for the canonical multilinear forms: [`LinForm`]
//! arithmetic must be a homomorphic image of expression evaluation, and
//! canonicalization must be stable.
#![cfg(feature = "proptest-tests")]
// Entire file is property-based; gated so `--no-default-features`
// builds without the vendored proptest shim.

use std::collections::HashMap;

use nascent_ir::{Atom, BinOp, Expr, LinForm, Term, UnOp, VarId};
use proptest::prelude::*;

const NVARS: u32 = 4;

/// Random integer expression over Add/Sub/Mul/Neg (the operators LinForm
/// distributes over) plus an occasional opaque Div.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::int),
        (0u32..NVARS).prop_map(|v| Expr::var(VarId(v))),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::mul(a, b)),
            inner.clone().prop_map(Expr::neg),
            (inner.clone(), 1i64..5).prop_map(|(a, k)| Expr::bin(BinOp::Div, a, Expr::int(k))),
        ]
    })
}

fn eval_expr(e: &Expr, env: &[i64]) -> i64 {
    match e {
        Expr::IntConst(v) => *v,
        Expr::RealConst(_) => 0,
        Expr::Var(v) => env[v.index()],
        Expr::Unary(UnOp::Neg, inner) => eval_expr(inner, env).wrapping_neg(),
        Expr::Unary(UnOp::Not, inner) => i64::from(eval_expr(inner, env) == 0),
        Expr::Binary(op, l, r) => {
            nascent_ir::expr::eval_int_binop(*op, eval_expr(l, env), eval_expr(r, env)).unwrap_or(0)
        }
    }
}

fn eval_form(f: &LinForm, env: &[i64]) -> i64 {
    let mut acc = f.constant_part();
    for (t, c) in f.terms() {
        let mut prod = 1i64;
        for a in t.atoms() {
            let v = match a {
                Atom::Var(v) => env[v.index()],
                Atom::Opaque(e) => eval_expr(e, env),
            };
            prod = prod.wrapping_mul(v);
        }
        acc = acc.wrapping_add(c.wrapping_mul(prod));
    }
    acc
}

proptest! {
    /// from_expr preserves value at every environment.
    #[test]
    fn from_expr_preserves_value(e in arb_expr(), env in prop::collection::vec(-9i64..9, NVARS as usize)) {
        // skip division-by-zero-contaminated cases: eval_expr treats them
        // as 0, LinForm keeps the opaque tree; both use the same eval here
        let f = LinForm::from_expr(&e);
        prop_assert_eq!(eval_form(&f, &env), eval_expr(&e, &env));
    }

    /// to_expr round-trips through from_expr exactly.
    #[test]
    fn to_expr_round_trips(e in arb_expr()) {
        let f = LinForm::from_expr(&e);
        let back = LinForm::from_expr(&f.to_expr());
        prop_assert_eq!(f, back);
    }

    /// add/sub/scale/mul agree with pointwise evaluation.
    #[test]
    fn ring_operations_are_pointwise(
        a in arb_expr(),
        b in arb_expr(),
        k in -5i64..5,
        env in prop::collection::vec(-7i64..7, NVARS as usize),
    ) {
        let fa = LinForm::from_expr(&a);
        let fb = LinForm::from_expr(&b);
        let (va, vb) = (eval_form(&fa, &env), eval_form(&fb, &env));
        prop_assert_eq!(eval_form(&fa.add(&fb), &env), va.wrapping_add(vb));
        prop_assert_eq!(eval_form(&fa.sub(&fb), &env), va.wrapping_sub(vb));
        prop_assert_eq!(eval_form(&fa.scale(k), &env), va.wrapping_mul(k));
        prop_assert_eq!(eval_form(&fa.mul(&fb), &env), va.wrapping_mul(vb));
        prop_assert_eq!(eval_form(&fa.neg(), &env), va.wrapping_neg());
    }

    /// Addition is commutative and associative on canonical forms
    /// (structurally, not just semantically).
    #[test]
    fn addition_is_commutative_and_associative(a in arb_expr(), b in arb_expr(), c in arb_expr()) {
        let (fa, fb, fc) = (
            LinForm::from_expr(&a),
            LinForm::from_expr(&b),
            LinForm::from_expr(&c),
        );
        prop_assert_eq!(fa.add(&fb), fb.add(&fa));
        prop_assert_eq!(fa.add(&fb).add(&fc), fa.add(&fb.add(&fc)));
    }

    /// Multiplication is commutative on canonical forms.
    #[test]
    fn multiplication_is_commutative(a in arb_expr(), b in arb_expr()) {
        let fa = LinForm::from_expr(&a);
        let fb = LinForm::from_expr(&b);
        prop_assert_eq!(fa.mul(&fb), fb.mul(&fa));
    }

    /// x - x is the zero form; x + 0 is x.
    #[test]
    fn additive_identities(a in arb_expr()) {
        let fa = LinForm::from_expr(&a);
        prop_assert_eq!(fa.sub(&fa), LinForm::zero());
        prop_assert_eq!(fa.add(&LinForm::zero()), fa.clone());
        prop_assert_eq!(fa.scale(0), LinForm::zero());
        prop_assert_eq!(fa.scale(1), fa);
    }

    /// Substituting a variable agrees with evaluating under a modified
    /// environment (when substitution succeeds).
    #[test]
    fn substitution_agrees_with_environment(
        a in arb_expr(),
        r in arb_expr(),
        v in 0u32..NVARS,
        env in prop::collection::vec(-6i64..6, NVARS as usize),
    ) {
        let fa = LinForm::from_expr(&a);
        let fr = LinForm::from_expr(&r);
        if let Some(subst) = fa.substitute_var(VarId(v), &fr) {
            let mut env2 = env.clone();
            env2[v as usize] = eval_form(&fr, &env);
            // substitution is only exact when v does not occur in fr's
            // own environment dependence at position v, i.e. fr must be
            // evaluated in the ORIGINAL env (which it is here)
            prop_assert_eq!(eval_form(&subst, &env), eval_form(&fa, &env2));
        }
    }

    /// Family keys are insensitive to added constants.
    #[test]
    fn family_key_mod_constants(a in arb_expr(), k in -50i64..50) {
        let fa = LinForm::from_expr(&a);
        let shifted = LinForm::from_expr(&Expr::add(a, Expr::int(k)));
        prop_assert_eq!(fa.symbolic_part(), shifted.symbolic_part());
    }

    /// Term products merge atom multisets and stay sorted.
    #[test]
    fn term_product_is_commutative(x in 0u32..NVARS, y in 0u32..NVARS) {
        let tx = Term::var(VarId(x));
        let ty = Term::var(VarId(y));
        prop_assert_eq!(tx.product(&ty), ty.product(&tx));
        prop_assert_eq!(tx.product(&ty).degree(), 2);
    }
}

/// Substitution failure cases must be exactly "v occurs non-linearly".
#[test]
fn substitute_fails_only_on_nonlinear_occurrence() {
    let v = VarId(0);
    let w = VarId(1);
    let linear = LinForm::var(v).scale(3).add(&LinForm::var(w));
    assert!(linear.substitute_var(v, &LinForm::constant(2)).is_some());
    let product = LinForm::from_expr(&Expr::mul(Expr::var(v), Expr::var(w)));
    assert!(product.substitute_var(v, &LinForm::constant(2)).is_none());
    let mut env_check = HashMap::new();
    env_check.insert(v, 1);
    // opaque occurrence also fails
    let opaque = LinForm::from_expr(&Expr::bin(BinOp::Div, Expr::var(v), Expr::int(2)));
    assert!(opaque.substitute_var(v, &LinForm::constant(4)).is_none());
}
