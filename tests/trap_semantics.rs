//! The paper's behavior-preservation criterion (§3), exercised on
//! programs that *do* violate their array ranges: for every scheme,
//! (1) the optimized program traps iff the original does, and
//! (2) never later (by dynamic instruction count). Earlier is allowed —
//! hoisted and strengthened checks detect violations sooner.

use nascent::frontend::compile;
use nascent::interp::{run, Limits};
use nascent::rangecheck::{optimize_program, CheckKind, OptimizeOptions, Scheme};

fn all_schemes() -> Vec<Scheme> {
    let mut v = Scheme::EACH.to_vec();
    v.push(Scheme::Mcm);
    v
}

fn check_trapping_program(src: &str) {
    let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
    let nt = naive
        .trap
        .as_ref()
        .unwrap_or_else(|| panic!("test program must trap:\n{src}"));
    for scheme in all_schemes() {
        for kind in [CheckKind::Prx, CheckKind::Inx] {
            let mut p = compile(src).unwrap();
            optimize_program(&mut p, &OptimizeOptions::scheme(scheme).with_kind(kind));
            let opt = run(&p, &Limits::default())
                .unwrap_or_else(|e| panic!("{scheme:?}/{kind:?}: {e}\n{src}"));
            let ot = opt
                .trap
                .as_ref()
                .unwrap_or_else(|| panic!("{scheme:?}/{kind:?}: trap lost\n{src}"));
            assert!(
                ot.at_progress <= nt.at_progress,
                "{scheme:?}/{kind:?}: trap delayed {} > {}\n{src}",
                ot.at_progress,
                nt.at_progress
            );
        }
    }
}

#[test]
fn trap_on_loop_overrun() {
    check_trapping_program(
        "program p
 integer a(1:10)
 integer i, s
 s = 0
 do i = 1, 15
  s = s + a(i)
 enddo
 print s
end
",
    );
}

#[test]
fn trap_on_first_iteration_lower_bound() {
    check_trapping_program(
        "program p
 integer a(5:10)
 integer i
 do i = 1, 10
  a(i) = i
 enddo
end
",
    );
}

#[test]
fn trap_on_invariant_subscript() {
    check_trapping_program(
        "program p
 integer a(1:10)
 integer i, k
 k = 11
 do i = 1, 5
  a(k) = i
 enddo
end
",
    );
}

#[test]
fn trap_in_nested_loop() {
    check_trapping_program(
        "program p
 integer g(1:8, 1:8)
 integer i, j
 do i = 1, 8
  do j = 1, 9
   g(i, j) = i + j
  enddo
 enddo
end
",
    );
}

#[test]
fn trap_in_subroutine_with_symbolic_bounds() {
    check_trapping_program(
        "subroutine fill(n, a)
 integer n, i
 integer a(1:n)
 do i = 1, n + 2
  a(i) = i
 enddo
end
program p
 integer b(1:10)
 call fill(10, b)
end
",
    );
}

#[test]
fn trap_in_while_loop() {
    check_trapping_program(
        "program p
 integer a(1:10)
 integer i
 i = 1
 while (i < 20)
  a(i) = i
  i = i + 1
 endwhile
end
",
    );
}

#[test]
fn trap_after_partial_output() {
    check_trapping_program(
        "program p
 integer a(1:6)
 integer i
 print 1
 print 2
 do i = 1, 9
  a(i) = i
 enddo
 print 3
end
",
    );
}

#[test]
fn trap_on_negative_step_underrun() {
    check_trapping_program(
        "program p
 integer a(3:10)
 integer i
 do i = 10, 1, -1
  a(i) = i
 enddo
end
",
    );
}

#[test]
fn trap_on_derived_induction_variable() {
    check_trapping_program(
        "program p
 integer a(1:20)
 integer i, j
 do i = 1, 10
  j = 2 * i + 1
  a(j) = i
 enddo
end
",
    );
}

#[test]
fn trap_on_triangular_accumulator() {
    check_trapping_program(
        "program p
 integer v(1:20)
 integer i, j, ij
 ij = 0
 do i = 1, 8
  do j = 1, i
   ij = ij + 1
   v(ij) = i
  enddo
 enddo
end
",
    );
}

/// Trap-free programs must stay trap-free under every scheme (dual of the
/// criterion): deliberately tight but valid subscript ranges.
#[test]
fn tight_but_valid_ranges_do_not_trap() {
    let sources = [
        "program p\n integer a(1:10)\n integer i\n do i = 1, 10\n a(i) = i\n enddo\nend\n",
        "program p\n integer a(0:9)\n integer i\n do i = 0, 9\n a(i) = i\n enddo\nend\n",
        "program p\n integer a(1:19)\n integer i\n do i = 1, 10\n a(2*i - 1) = i\n enddo\nend\n",
        "program p\n integer a(1:10)\n integer i\n do i = 10, 1, -1\n a(i) = i\n enddo\nend\n",
        "program p\n integer a(1:1)\n integer i\n do i = 1, 1\n a(i) = i\n enddo\nend\n",
        // zero-trip loop with wildly invalid body subscript
        "program p\n integer a(1:5)\n integer i\n do i = 5, 1\n a(i + 99) = i\n enddo\n print 0\nend\n",
    ];
    for src in sources {
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        assert!(naive.trap.is_none(), "naive must not trap:\n{src}");
        for scheme in all_schemes() {
            let mut p = compile(src).unwrap();
            optimize_program(&mut p, &OptimizeOptions::scheme(scheme));
            let opt =
                run(&p, &Limits::default()).unwrap_or_else(|e| panic!("{scheme:?}: {e}\n{src}"));
            assert!(
                opt.trap.is_none(),
                "{scheme:?} introduced a trap: {:?}\n{src}",
                opt.trap
            );
            assert_eq!(opt.output, naive.output, "{scheme:?}\n{src}");
        }
    }
}
