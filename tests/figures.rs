//! Structural reproductions of the paper's worked examples
//! (Figures 1, 2, 5, 6) as integration tests over the public API.

use nascent::analysis::dom::Dominators;
use nascent::analysis::induction::{classify_function, InductionClass};
use nascent::analysis::loops::LoopForest;
use nascent::analysis::ssa::Ssa;
use nascent::frontend::compile;
use nascent::interp::{run, Limits};
use nascent::ir::pretty::checks_to_strings;
use nascent::ir::VarId;
use nascent::rangecheck::{optimize_program, OptimizeOptions, Scheme};

const FIG1: &str = "program fig1
 integer a(5:10)
 integer n
 n = 4
 a(2*n) = 0
 a(2*n - 1) = 1
end
";

/// Figure 1(a) → (b): `C4` is implied by `C2` and eliminated; 3 checks
/// remain.
#[test]
fn figure1_b() {
    let mut p = compile(FIG1).unwrap();
    optimize_program(&mut p, &OptimizeOptions::scheme(Scheme::Ni));
    assert_eq!(p.check_count(), 3);
    let remaining: Vec<String> = checks_to_strings(&p.functions[0])
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    assert!(remaining.iter().any(|s| s.contains("<= -5")), "C1 stays");
    assert!(remaining.iter().any(|s| s.contains("<= 10")), "C2 stays");
    assert!(remaining.iter().any(|s| s.contains("<= -6")), "C3 stays");
    assert!(!remaining.iter().any(|s| s.contains("<= 11")), "C4 removed");
}

/// Figure 1(a) → (c): check strengthening replaces `C1` by `C3`; only two
/// checks remain.
#[test]
fn figure1_c() {
    let mut p = compile(FIG1).unwrap();
    optimize_program(&mut p, &OptimizeOptions::scheme(Scheme::Cs));
    assert_eq!(p.check_count(), 2);
    let remaining: Vec<String> = checks_to_strings(&p.functions[0])
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    assert!(remaining.iter().any(|s| s.contains("<= -6")));
    assert!(remaining.iter().any(|s| s.contains("<= 10")));
}

/// Figure 2: `j` is the basic linear sequence `h`, `k = 5h + 3` at the
/// header, `t` polynomial, `2*m + 1` invariant.
#[test]
fn figure2_classifications() {
    let src = "program fig2
 integer a(1:100)
 integer i, j, k, m, n, t
 n = 8
 j = 0
 k = 3
 m = 5
 t = 0
 do i = 0, n - 1
  j = j + 1
  k = k + m
  t = t + j
  a(k) = 2 * m + 1
 enddo
end
";
    let p = compile(src).unwrap();
    let f = &p.functions[0];
    let dom = Dominators::compute(f);
    let ssa = Ssa::compute(f, &dom);
    let forest = LoopForest::compute(f);
    let classes = classify_function(f, &ssa, &forest);
    let l = nascent::analysis::loops::LoopId(0);
    // i j k m n t = VarId 0..5
    assert_eq!(
        classes[&(l, VarId(1))],
        InductionClass::Linear {
            coeff: Some(1),
            offset: Some(0)
        }
    );
    assert_eq!(
        classes[&(l, VarId(2))],
        InductionClass::Linear {
            coeff: Some(5),
            offset: Some(3)
        }
    );
    assert_eq!(
        classes[&(l, VarId(3))],
        InductionClass::Invariant { value: Some(5) }
    );
    assert_eq!(
        classes[&(l, VarId(5))],
        InductionClass::Polynomial { degree: 2 }
    );
}

/// Figure 5: safe-earliest placement increases the checks executed on the
/// `else` path — the paper's profitability caveat, observed dynamically.
#[test]
fn figure5_unprofitable_else_path() {
    let src = "program fig5
 integer a(1:10)
 integer i, c
 c = 0
 i = 2
 if (c > 0) then
  a(i) = 1
 else
  a(i + 4) = 1
 endif
end
";
    let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
    let mut p = compile(src).unwrap();
    optimize_program(&mut p, &OptimizeOptions::scheme(Scheme::Se));
    let opt = run(&p, &Limits::default()).unwrap();
    assert!(
        opt.dynamic_checks > naive.dynamic_checks,
        "expected the else path to get MORE checks ({} vs {})",
        opt.dynamic_checks,
        naive.dynamic_checks
    );
    assert_eq!(opt.output, naive.output);
    assert_eq!(opt.trap, naive.trap);
}

/// Figure 6: both checks leave the loop as conditional checks in the
/// preheader and the loop body becomes check-free.
#[test]
fn figure6_conditional_checks_in_preheader() {
    let src = "program fig6
 integer a(1:10)
 integer j, k, n
 n = 4
 k = 7
 do j = 1, 2 * n
  a(k) = a(j) + 1
 enddo
end
";
    let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
    let mut p = compile(src).unwrap();
    optimize_program(&mut p, &OptimizeOptions::scheme(Scheme::Lls));
    let opt = run(&p, &Limits::default()).unwrap();
    assert_eq!(opt.output, naive.output);
    // naive: 8 iterations * 4 checks = 32; optimized: one conditional
    // check per family at the preheader
    assert_eq!(naive.dynamic_checks, 32);
    assert!(opt.dynamic_checks <= 4, "got {}", opt.dynamic_checks);
    // the remaining checks are conditional (Cond-check) and sit outside
    // the loop
    let strings: Vec<String> = checks_to_strings(&p.functions[0])
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    assert!(strings.iter().all(|s| s.starts_with("Cond-check")));
}
