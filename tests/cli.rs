//! Integration tests for the `nascentc` command-line driver, run against
//! the real binary via `CARGO_BIN_EXE_nascentc`.

use std::io::Write as _;
use std::process::Command;

fn nascentc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_nascentc"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_temp(name: &str, src: &str) -> String {
    let path = std::env::temp_dir().join(format!("nascentc-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path.to_string_lossy().into_owned()
}

const DEMO: &str = "program demo
 integer a(1:100)
 integer i, n
 n = 100
 do i = 1, n
  a(i) = 2 * i
 enddo
 print a(n)
end
";

#[test]
fn check_accepts_valid_and_rejects_invalid() {
    let good = write_temp("good.mf", DEMO);
    let out = nascentc(&["check", &good]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok"));

    let bad = write_temp("bad.mf", "program p\n x = 1\nend\n");
    let out = nascentc(&["check", &bad]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not declared"));
}

#[test]
fn run_prints_output_and_counters() {
    let f = write_temp("run.mf", DEMO);
    let out = nascentc(&["run", &f, "--no-opt"]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "200");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("checks: 202"), "{err}");
}

#[test]
fn run_with_lls_reduces_checks() {
    let f = write_temp("lls.mf", DEMO);
    let out = nascentc(&["run", &f, "--scheme", "LLS"]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "200");
    let err = String::from_utf8_lossy(&out.stderr);
    let checks: u64 = err
        .split("checks: ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap();
    assert!(checks <= 6, "{err}");
}

#[test]
fn dump_shows_cond_checks() {
    let f = write_temp("dump.mf", DEMO);
    let out = nascentc(&["dump", &f, "--scheme", "LLS"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("Cond-check"));
}

#[test]
fn stats_and_report_render() {
    let f = write_temp("stats.mf", DEMO);
    let out = nascentc(&["stats", &f, "--scheme", "ALL", "--inx"]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("scheme:            ALL"));
    assert!(s.contains("families:"));

    let out = nascentc(&["report", &f]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("static checks"));
}

#[test]
fn compare_lists_all_schemes() {
    let f = write_temp("cmp.mf", DEMO);
    let out = nascentc(&["compare", &f]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    for name in ["NI", "CS", "LNI", "SE", "LI", "LLS", "ALL", "MCM"] {
        assert!(s.contains(name), "missing {name} in\n{s}");
    }
}

#[test]
fn trap_is_reported_on_stderr() {
    let f = write_temp("trap.mf", "program p\n integer a(1:5)\n a(9) = 1\nend\n");
    let out = nascentc(&["run", &f, "--no-opt"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("TRAP"));
}

#[test]
fn bad_usage_fails_cleanly() {
    assert!(!nascentc(&[]).status.success());
    assert!(!nascentc(&["frobnicate", "x.mf"]).status.success());
    let f = write_temp("opt.mf", DEMO);
    assert!(!nascentc(&["run", &f, "--scheme", "BOGUS"]).status.success());
    assert!(!nascentc(&["run", &f, "--unknown-flag"]).status.success());
    assert!(!nascentc(&["run", "/nonexistent/file.mf"]).status.success());
}

#[test]
fn classic_flag_composes() {
    let f = write_temp("classic.mf", DEMO);
    let out = nascentc(&["run", &f, "--classic", "--scheme", "LLS"]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "200");
}
