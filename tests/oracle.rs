//! Property-based safety oracle: on randomly generated structured
//! programs, every optimizer configuration preserves the paper's §3
//! criterion —
//!
//! 1. a range violation is detected in the optimized program if and only
//!    if it is detected in the unoptimized program, and
//! 2. the optimized program detects it **no later** (measured in dynamic
//!    non-check instructions);
//!
//! and on trap-free runs the observable output is identical and the
//! dynamic check count never increases for the loop-based schemes.
#![cfg(feature = "proptest-tests")]
// Entire file is property-based; gated so `--no-default-features`
// builds without the vendored proptest shim.

use nascent::frontend::compile;
use nascent::interp::{run, Limits, RunError, RunResult};
use nascent::rangecheck::{optimize_program, CheckKind, ImplicationMode, OptimizeOptions, Scheme};
use nascent::suite::{random_program, GenConfig};
use proptest::prelude::*;

fn limits() -> Limits {
    Limits {
        max_steps: 200_000,
        max_call_depth: 16,
    }
}

fn naive_result(src: &str) -> Option<RunResult> {
    let prog = compile(src).expect("generated programs compile");
    match run(&prog, &limits()) {
        Ok(r) => Some(r),
        Err(RunError::StepLimit | RunError::DivisionByZero { .. }) => None,
        Err(e) => panic!("naive run failed: {e}"),
    }
}

fn check_config(src: &str, naive: &RunResult, opts: &OptimizeOptions) {
    let mut prog = compile(src).expect("compiles");
    optimize_program(&mut prog, opts);
    nascent::ir::validate::assert_valid(&prog);
    let opt = match run(&prog, &limits()) {
        Ok(r) => r,
        // the optimizer never adds arithmetic, so these cannot appear
        // unless the naive run had them
        Err(e) => panic!("{opts:?}: optimized run failed: {e}\n{src}"),
    };
    match (&naive.trap, &opt.trap) {
        (Some(nt), Some(ot)) => {
            assert!(
                ot.at_progress <= nt.at_progress,
                "{opts:?}: trap delayed ({} > {})\n{src}",
                ot.at_progress,
                nt.at_progress
            );
        }
        (Some(nt), None) => panic!("{opts:?}: trap lost ({nt:?})\n{src}"),
        (None, Some(ot)) => panic!("{opts:?}: trap introduced ({ot:?})\n{src}"),
        (None, None) => {
            assert_eq!(opt.output, naive.output, "{opts:?}: output changed\n{src}");
            assert_eq!(
                opt.dynamic_progress, naive.dynamic_progress,
                "{opts:?}: non-check work changed\n{src}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn all_schemes_safe_on_random_programs(seed in 0u64..5000) {
        let cfg = GenConfig::default();
        let src = random_program(seed, &cfg);
        if let Some(naive) = naive_result(&src) {
            for scheme in Scheme::EACH {
                for kind in [CheckKind::Prx, CheckKind::Inx] {
                    check_config(
                        &src,
                        &naive,
                        &OptimizeOptions::scheme(scheme).with_kind(kind),
                    );
                }
            }
        }
    }

    #[test]
    fn implication_modes_safe_on_random_programs(seed in 5000u64..8000) {
        let cfg = GenConfig {
            wild_percent: 40,
            ..GenConfig::default()
        };
        let src = random_program(seed, &cfg);
        if let Some(naive) = naive_result(&src) {
            for mode in [
                ImplicationMode::All,
                ImplicationMode::CrossFamilyOnly,
                ImplicationMode::None,
            ] {
                for scheme in [Scheme::Ni, Scheme::Se, Scheme::Lls] {
                    check_config(
                        &src,
                        &naive,
                        &OptimizeOptions::scheme(scheme).with_implications(mode),
                    );
                }
            }
        }
    }

    #[test]
    fn loop_schemes_never_increase_checks_on_trap_free_runs(seed in 8000u64..10000) {
        let cfg = GenConfig { wild_percent: 0, ..GenConfig::default() };
        let src = random_program(seed, &cfg);
        if let Some(naive) = naive_result(&src) {
            if naive.trap.is_none() {
                for scheme in [Scheme::Ni, Scheme::Cs, Scheme::Li, Scheme::Lls] {
                    let mut prog = compile(&src).unwrap();
                    optimize_program(&mut prog, &OptimizeOptions::scheme(scheme));
                    let opt = run(&prog, &limits()).unwrap();
                    prop_assert!(
                        opt.dynamic_checks <= naive.dynamic_checks,
                        "{scheme:?}: {} -> {}\n{src}",
                        naive.dynamic_checks,
                        opt.dynamic_checks
                    );
                }
            }
        }
    }
}
