//! End-to-end pipeline tests: MiniF source → naive checks → optimizer →
//! instrumented execution, across the benchmark suite and all schemes.

use nascent::frontend::compile;
use nascent::interp::{run, Limits};
use nascent::rangecheck::{optimize_program, CheckKind, OptimizeOptions, Scheme};
use nascent::suite::test_suite;

fn limits() -> Limits {
    Limits {
        max_steps: 50_000_000,
        max_call_depth: 64,
    }
}

#[test]
fn every_scheme_preserves_suite_behavior() {
    for b in test_suite() {
        let naive_prog = compile(&b.source).expect("suite compiles");
        let naive = run(&naive_prog, &limits()).expect("suite runs");
        assert!(naive.trap.is_none());
        for scheme in Scheme::EACH {
            for kind in [CheckKind::Prx, CheckKind::Inx] {
                let mut prog = compile(&b.source).unwrap();
                optimize_program(&mut prog, &OptimizeOptions::scheme(scheme).with_kind(kind));
                nascent::ir::validate::assert_valid(&prog);
                let opt = run(&prog, &limits())
                    .unwrap_or_else(|e| panic!("{} under {scheme:?}/{kind:?}: {e}", b.name));
                assert!(
                    opt.trap.is_none(),
                    "{} under {scheme:?}/{kind:?}: introduced trap",
                    b.name
                );
                assert_eq!(
                    opt.output, naive.output,
                    "{} under {scheme:?}/{kind:?}: output changed",
                    b.name
                );
                assert!(
                    opt.dynamic_checks <= naive.dynamic_checks,
                    "{} under {scheme:?}/{kind:?}: checks increased {} -> {}",
                    b.name,
                    naive.dynamic_checks,
                    opt.dynamic_checks
                );
                assert_eq!(
                    opt.dynamic_progress, naive.dynamic_progress,
                    "{} under {scheme:?}/{kind:?}: non-check work changed",
                    b.name
                );
            }
        }
    }
}

#[test]
fn lls_eliminates_the_vast_majority_on_loop_heavy_programs() {
    // analog of the paper's headline: "loop-based optimizations ...
    // eliminate about 98% of the range checks" (at paper scale; the tiny
    // test scale has proportionally larger preheader overhead, so the
    // threshold here is lower)
    let loop_heavy = ["vortex", "arc2d", "simple"];
    for b in test_suite() {
        if !loop_heavy.contains(&b.name) {
            continue;
        }
        let naive_prog = compile(&b.source).unwrap();
        let naive = run(&naive_prog, &limits()).unwrap();
        let mut prog = compile(&b.source).unwrap();
        optimize_program(&mut prog, &OptimizeOptions::scheme(Scheme::Lls));
        let opt = run(&prog, &limits()).unwrap();
        let pct = 100.0 * (1.0 - opt.dynamic_checks as f64 / naive.dynamic_checks as f64);
        assert!(pct > 85.0, "{}: LLS only eliminated {pct:.1}%", b.name);
    }
}

#[test]
fn scheme_ordering_matches_the_paper() {
    // SE >= LNI >= NI and SE >= CS >= NI on every program (in eliminated
    // checks); ALL >= LLS
    for b in test_suite() {
        let naive_prog = compile(&b.source).unwrap();
        let naive = run(&naive_prog, &limits()).unwrap();
        let dyn_of = |scheme: Scheme| -> u64 {
            let mut prog = compile(&b.source).unwrap();
            optimize_program(&mut prog, &OptimizeOptions::scheme(scheme));
            run(&prog, &limits()).unwrap().dynamic_checks
        };
        let ni = dyn_of(Scheme::Ni);
        let cs = dyn_of(Scheme::Cs);
        let lni = dyn_of(Scheme::Lni);
        let se = dyn_of(Scheme::Se);
        assert!(se <= lni, "{}: SE {} > LNI {}", b.name, se, lni);
        assert!(lni <= ni, "{}: LNI {} > NI {}", b.name, lni, ni);
        assert!(cs <= ni, "{}: CS {} > NI {}", b.name, cs, ni);
        assert!(se <= cs, "{}: SE {} > CS {}", b.name, se, cs);
        let _ = naive;
    }
}

#[test]
fn optimizer_is_idempotent_under_ni() {
    // running elimination twice changes nothing further
    for b in test_suite().into_iter().take(3) {
        let mut prog = compile(&b.source).unwrap();
        optimize_program(&mut prog, &OptimizeOptions::scheme(Scheme::Ni));
        let after_once = prog.check_count();
        let stats = optimize_program(&mut prog, &OptimizeOptions::scheme(Scheme::Ni));
        assert_eq!(prog.check_count(), after_once, "{}", b.name);
        assert_eq!(stats.eliminated_static, 0, "{}", b.name);
    }
}

#[test]
fn stats_accounting_is_consistent() {
    for b in test_suite() {
        let mut prog = compile(&b.source).unwrap();
        let before = prog.check_count();
        let stats = optimize_program(&mut prog, &OptimizeOptions::scheme(Scheme::Lls));
        assert_eq!(stats.static_before, before, "{}", b.name);
        assert_eq!(stats.static_after, prog.check_count(), "{}", b.name);
        assert!(stats.families > 0, "{}", b.name);
    }
}
