//! `nascent` — facade crate for the `nascent-rc` workspace, a reproduction
//! of Kolte & Wolfe, *Elimination of Redundant Array Subscript Range
//! Checks* (PLDI 1995).
//!
//! Re-exports the crates of the workspace under stable module names:
//!
//! * [`ir`] — CFG-based IR and canonical check forms,
//! * [`frontend`] — the MiniF (Fortran-like) language,
//! * [`analysis`] — dominators, loops, SSA, induction variables,
//! * [`rangecheck`] — the range-check optimizer (the paper's contribution),
//! * [`interp`] — the instrumented interpreter,
//! * [`suite`] — the benchmark programs,
//! * [`cback`] — the instrumented C back end (the paper's measurement
//!   methodology), cross-validated against the interpreter,
//! * [`classic`] — traditional scalar optimizations (constant/copy
//!   propagation, branch folding, DCE, CFG cleanup) usable as a pre-pass,
//! * [`verify`] — the static safety certifier: symbolic value-range
//!   analysis plus translation validation of every optimization decision,
//! * [`driver`] — the canonical pipeline layer: one `Request` → `Outcome`
//!   function behind a fleet-wide result cache, the shared run
//!   configuration, the experiment harness, and the `nascentd` service,
//! * [`obs`] — structured observability: span tracing with Chrome-trace
//!   export, the metrics registry behind `/metrics`, and request ids.
//!
//! # Quickstart
//!
//! ```
//! use nascent::frontend::compile;
//! use nascent::rangecheck::{optimize_program, OptimizeOptions, Scheme};
//! use nascent::interp::{run, Limits};
//!
//! let src = r#"
//! program demo
//!   integer a(1:100)
//!   integer i
//!   do i = 1, 100
//!     a(i) = i
//!   enddo
//! end
//! "#;
//! let mut prog = compile(src).expect("compiles");
//! let naive = run(&prog, &Limits::default()).expect("runs");
//! let stats = optimize_program(&mut prog, &OptimizeOptions::scheme(Scheme::Lls));
//! let opt = run(&prog, &Limits::default()).expect("still runs");
//! assert!(opt.dynamic_checks < naive.dynamic_checks);
//! assert!(stats.eliminated_static > 0);
//! ```

pub use nascent_analysis as analysis;
pub use nascent_cback as cback;
pub use nascent_classic as classic;
pub use nascent_driver as driver;
pub use nascent_frontend as frontend;
pub use nascent_interp as interp;
pub use nascent_ir as ir;
pub use nascent_obs as obs;
pub use nascent_rangecheck as rangecheck;
pub use nascent_suite as suite;
pub use nascent_verify as verify;
