//! `nascentd` — the optimize+certify pipeline as a long-running service.
//!
//! ```text
//! nascentd [--addr HOST:PORT] [--workers N] [--queue N]
//! ```
//!
//! Serves `POST /optimize`, `POST /certify`, `GET /healthz`, and
//! `GET /metrics` over HTTP/1.1 (one request per connection). Request
//! bodies are JSON objects whose fields spell exactly like the
//! `nascentc` flag values:
//!
//! ```text
//! curl -s localhost:7878/certify -d '{
//!   "program": "program p\n integer a(1:10)\n integer i\n do i = 1, 10\n  a(i) = i\n enddo\n print a(5)\nend\n",
//!   "scheme": "LLS", "kind": "prx", "implications": "all",
//!   "discharge": "off", "engine": "vm"
//! }'
//! ```
//!
//! All requests share one [`nascent_driver::Pipeline`] and its
//! fleet-wide result cache; identical concurrent requests compute once.

use std::process::ExitCode;

use nascent_driver::service::{start, ServiceConfig};

const USAGE: &str = "usage: nascentd [--addr HOST:PORT] [--workers N] [--queue N]

  --addr HOST:PORT  bind address (default 127.0.0.1:7878; port 0 picks one)
  --workers N       worker threads (default: available parallelism)
  --queue N         admitted-request limit before 503
                    (default: workers * 16, floored at 128)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServiceConfig {
        addr: "127.0.0.1:7878".into(),
        ..ServiceConfig::default()
    };
    let mut queue_set = false;
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            let flag = args[*i].clone();
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let result = match args[i].as_str() {
            "--addr" => value(&mut i).map(|v| config.addr = v),
            "--workers" => value(&mut i).and_then(|v| {
                v.parse::<usize>()
                    .map(|n| config.workers = n.max(1))
                    .map_err(|_| format!("bad --workers value `{v}`"))
            }),
            "--queue" => value(&mut i).and_then(|v| {
                v.parse::<usize>()
                    .map(|n| {
                        config.queue_limit = n.max(1);
                        queue_set = true;
                    })
                    .map_err(|_| format!("bad --queue value `{v}`"))
            }),
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(e) = result {
            eprintln!("nascentd: {e}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
        i += 1;
    }
    if !queue_set {
        config.queue_limit = (config.workers * 16).max(128);
    }
    let workers = config.workers;
    let queue_limit = config.queue_limit;
    let handle = match start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("nascentd: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "nascentd listening on {} ({} workers, queue limit {})",
        handle.addr, workers, queue_limit
    );
    // the service runs until the process is killed
    loop {
        std::thread::park();
    }
}
