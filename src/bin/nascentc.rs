//! `nascentc` — command-line driver for the nascent-rc range-check
//! optimizer.
//!
//! ```text
//! nascentc check  <file.mf>                 parse + semantic-check only
//! nascentc dump   <file.mf> [options]       print the (optimized) IR
//! nascentc run    <file.mf> [options]       execute with dynamic counters
//! nascentc stats  <file.mf> [options]       optimizer statistics
//! nascentc trace  <file.mf> [n] [options]    print the first n executed stmts
//! nascentc report <file.mf> [options]       per-family before/after report
//! nascentc compare <file.mf>                all schemes side by side
//! nascentc verify <file.mf> [options]       certify the optimization run
//!
//! options:
//!   --scheme NI|CS|LNI|SE|LI|LLS|ALL|MCM    placement scheme (default LLS)
//!   --classic                               classical scalar opts pre-pass
//!   --inx                                   use induction-expression checks
//!   --implications all|cross|none           implication ablation
//!   --discharge on|off                      static-discharge tier: delete
//!                                           checks the value-range pass
//!                                           proves safe (default off)
//!   --no-opt                                keep the naive checks
//!   --engine tree|vm|native                 (run/compare) execution engine
//!                                           (default vm); counters are
//!                                           engine-invariant. `native`
//!                                           compiles to instrumented C
//!                                           through a content-hash compile
//!                                           cache (needs $CC or cc)
//!   --certify                               (stats/report) also run the
//!                                           static certifier on the result
//!   --timings                               (stats) per-analysis/per-pass
//!                                           wall times (timings-format 1)
//!   --timings-format text|json              (stats) timings output format:
//!                                           the stable text report
//!                                           (default) or one JSON object
//!                                           with a record per analysis
//!                                           and per pass
//!   --trace FILE                            record every pipeline span
//!                                           (stages, passes, analyses)
//!                                           and write a Chrome
//!                                           `chrome://tracing` JSON file
//!                                           on exit (any command)
//! ```
//!
//! All pipeline glue lives in [`nascent::driver`]: the run configuration
//! and its flag parser are [`RunConfig`] (shared verbatim with the
//! `nascentd` service, where the same spellings arrive as JSON fields),
//! and optimize/certify are the driver's [`apply`] /
//! [`optimize_and_certify`]. `verify` (and `--certify`) re-optimizes
//! with the justification log enabled and replays every decision through
//! `nascent::verify`; the exit code is non-zero if any proof obligation
//! fails.

use std::process::ExitCode;

use nascent::driver::{apply, optimize_and_certify, RunConfig};
use nascent::frontend::compile;
use nascent::interp::{run_with_engine, Limits};
use nascent::ir::pretty::DisplayProgram;
use nascent::rangecheck::{optimize_program, OptimizeOptions, Scheme};
use nascent::verify::Certificate;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("nascentc: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    config: RunConfig,
    certify: bool,
    timings: bool,
    timings_json: bool,
}

fn parse_options(rest: &[String]) -> Result<Options, String> {
    let mut config = RunConfig::default();
    let mut certify = false;
    let mut timings = false;
    let mut timings_json = false;
    let mut i = 0;
    while i < rest.len() {
        if config.parse_flag(rest, &mut i)? {
            i += 1;
            continue;
        }
        match rest[i].as_str() {
            "--certify" => certify = true,
            "--timings" => timings = true,
            "--timings-format" => {
                i += 1;
                match rest.get(i).map(String::as_str) {
                    Some("text") => timings_json = false,
                    Some("json") => timings_json = true,
                    Some(other) => {
                        return Err(format!(
                            "bad --timings-format `{other}` (expected `text` or `json`)"
                        ))
                    }
                    None => return Err("--timings-format needs a value".into()),
                }
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    Ok(Options {
        config,
        certify,
        timings,
        timings_json,
    })
}

/// Prints a certificate, diagnostics first; `Err` when it was rejected.
fn render_certificate(cert: &Certificate) -> Result<(), String> {
    for d in &cert.diagnostics {
        eprintln!("  {d}");
    }
    if cert.ok() {
        println!("{cert}");
        Ok(())
    } else {
        Err(cert.to_string())
    }
}

fn load(path: &str) -> Result<nascent::ir::Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    compile(&src).map_err(|e| format!("{path}: {e}"))
}

/// Extracts a global `--trace FILE` option (valid anywhere on the
/// command line), returning the remaining args and the trace path.
fn extract_trace(args: &[String]) -> Result<(Vec<String>, Option<String>), String> {
    let mut out = Vec::new();
    let mut trace = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            i += 1;
            match args.get(i) {
                Some(path) => trace = Some(path.clone()),
                None => return Err("--trace needs a file path".into()),
            }
        } else {
            out.push(args[i].clone());
        }
        i += 1;
    }
    Ok((out, trace))
}

fn run_cli(args: &[String]) -> Result<(), String> {
    let (args, trace_path) = extract_trace(args)?;
    if trace_path.is_some() {
        nascent::obs::trace::set_global_enabled(true);
    }
    let result = dispatch(&args);
    if let Some(path) = trace_path {
        nascent::obs::trace::set_global_enabled(false);
        let spans = nascent::obs::trace::drain_global();
        let json = nascent::obs::trace::chrome_trace_json(&spans);
        std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("trace: {} spans -> {path}", spans.len());
    }
    result
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let (cmd, file, rest) =
        match args {
            [cmd, file, rest @ ..] => (cmd.as_str(), file.as_str(), rest),
            _ => return Err(
                "usage: nascentc <check|dump|run|stats|report|compare|verify> <file.mf> [options]"
                    .to_string(),
            ),
        };
    match cmd {
        "check" => {
            load(file)?;
            println!("{file}: ok");
            Ok(())
        }
        "dump" => {
            let options = parse_options(rest)?;
            let mut prog = load(file)?;
            apply(&options.config, &mut prog);
            print!("{}", DisplayProgram(&prog));
            Ok(())
        }
        "run" => {
            let options = parse_options(rest)?;
            let mut prog = load(file)?;
            apply(&options.config, &mut prog);
            let r = run_with_engine(&prog, &Limits::default(), options.config.engine)
                .map_err(|e| e.to_string())?;
            for v in &r.output {
                println!("{v}");
            }
            eprintln!(
                "instructions: {}   checks: {}   guard-ops: {}",
                r.dynamic_instructions, r.dynamic_checks, r.dynamic_guard_ops
            );
            if let Some(t) = &r.trap {
                eprintln!(
                    "TRAP in {} at instruction {}: {}",
                    t.function, t.at_instruction, t.check
                );
            }
            Ok(())
        }
        "stats" => {
            let options = parse_options(rest)?;
            let mut prog = load(file)?;
            let (stats, cert, timings) = optimize_and_certify(&options.config, &mut prog);
            println!("scheme:            {}", options.config.scheme.name());
            println!(
                "static checks:     {} -> {}",
                stats.static_before, stats.static_after
            );
            println!("discharged:        {}", stats.discharged);
            println!("inserted (PRE):    {}", stats.inserted);
            println!("hoisted (preheader): {}", stats.hoisted);
            println!("strengthened:      {}", stats.strengthened);
            println!("eliminated:        {}", stats.eliminated_static);
            println!(
                "folded true/false: {}/{}",
                stats.folded_true, stats.folded_false
            );
            println!("families:          {}", stats.families);
            println!("CIG edges:         {}", stats.cig_edges);
            println!("dataflow iters:    {}", stats.dataflow_iterations);
            if options.timings {
                println!();
                if options.timings_json {
                    println!("{}", timings.report_json());
                } else {
                    print!("{}", timings.report());
                }
            }
            if options.certify {
                render_certificate(&cert)?;
            }
            Ok(())
        }
        "trace" => {
            let (count, rest) = match rest {
                [n, more @ ..] if n.parse::<usize>().is_ok() => (n.parse::<usize>().unwrap(), more),
                _ => (50, rest),
            };
            let options = parse_options(rest)?;
            let mut prog = load(file)?;
            apply(&options.config, &mut prog);
            let (r, trace) = nascent::interp::run_traced(&prog, &Limits::default(), count);
            for e in &trace {
                println!("{}:{}[{}]  {}", e.function, e.block, e.stmt, e.rendered);
            }
            let r = r.map_err(|e| e.to_string())?;
            if let Some(t) = &r.trap {
                eprintln!("TRAP in {}: {}", t.function, t.check);
            }
            Ok(())
        }
        "report" => {
            let options = parse_options(rest)?;
            let before = load(file)?;
            let mut after = load(file)?;
            let (_, cert, _) = optimize_and_certify(&options.config, &mut after);
            print!("{}", nascent::rangecheck::report::report(&before, &after));
            if options.certify {
                render_certificate(&cert)?;
            }
            Ok(())
        }
        "verify" => {
            let options = parse_options(rest)?;
            let mut prog = load(file)?;
            let (_, cert, _) = optimize_and_certify(&options.config, &mut prog);
            let opts = options.config.opts();
            println!(
                "scheme {} / {:?} / {:?} implications",
                opts.scheme.name(),
                opts.kind,
                opts.implications
            );
            render_certificate(&cert)
        }
        "compare" => {
            let options = parse_options(rest)?;
            let naive_prog = load(file)?;
            let naive = run_with_engine(&naive_prog, &Limits::default(), options.config.engine)
                .map_err(|e| e.to_string())?;
            println!(
                "naive: {} dynamic checks / {} instructions",
                naive.dynamic_checks, naive.dynamic_instructions
            );
            println!("{:<6} {:>12} {:>10}", "scheme", "dyn checks", "% removed");
            for scheme in Scheme::EACH.into_iter().chain([Scheme::Mcm]) {
                let mut prog = load(file)?;
                optimize_program(&mut prog, &OptimizeOptions::scheme(scheme));
                let r = run_with_engine(&prog, &Limits::default(), options.config.engine)
                    .map_err(|e| e.to_string())?;
                let pct =
                    100.0 * (1.0 - r.dynamic_checks as f64 / naive.dynamic_checks.max(1) as f64);
                println!(
                    "{:<6} {:>12} {:>9.1}%",
                    scheme.name(),
                    r.dynamic_checks,
                    pct
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
