//! `nascentc` — command-line driver for the nascent-rc range-check
//! optimizer.
//!
//! ```text
//! nascentc check  <file.mf>                 parse + semantic-check only
//! nascentc dump   <file.mf> [options]       print the (optimized) IR
//! nascentc run    <file.mf> [options]       execute with dynamic counters
//! nascentc stats  <file.mf> [options]       optimizer statistics
//! nascentc trace  <file.mf> [n] [options]    print the first n executed stmts
//! nascentc report <file.mf> [options]       per-family before/after report
//! nascentc compare <file.mf>                all schemes side by side
//! nascentc verify <file.mf> [options]       certify the optimization run
//!
//! options:
//!   --scheme NI|CS|LNI|SE|LI|LLS|ALL|MCM    placement scheme (default LLS)
//!   --classic                               classical scalar opts pre-pass
//!   --inx                                   use induction-expression checks
//!   --implications all|cross|none           implication ablation
//!   --discharge on|off                      static-discharge tier: delete
//!                                           checks the value-range pass
//!                                           proves safe (default off)
//!   --no-opt                                keep the naive checks
//!   --engine tree|vm                        (run/compare) execution engine
//!                                           (default vm); counters are
//!                                           engine-invariant
//!   --certify                               (stats/report) also run the
//!                                           static certifier on the result
//!   --timings                               (stats) per-analysis/per-pass
//!                                           wall times (timings-format 1)
//! ```
//!
//! `verify` (and `--certify`) re-optimizes with the justification log
//! enabled and replays every decision through `nascent::verify`; the exit
//! code is non-zero if any proof obligation fails.

use std::process::ExitCode;

use nascent::frontend::compile;
use nascent::interp::{run_with_engine, Engine, Limits};
use nascent::ir::pretty::DisplayProgram;
use nascent::rangecheck::{
    optimize_program, optimize_program_logged_timed, CheckKind, Discharge, ImplicationMode,
    JustLog, OptimizeOptions, OptimizeStats, Scheme, Timings,
};
use nascent::verify::{certify_program, Certificate};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("nascentc: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    opts: OptimizeOptions,
    optimize: bool,
    classic: bool,
    certify: bool,
    timings: bool,
    engine: Engine,
}

fn parse_options(rest: &[String]) -> Result<Options, String> {
    let mut opts = OptimizeOptions::scheme(Scheme::Lls);
    let mut optimize = true;
    let mut classic = false;
    let mut certify = false;
    let mut timings = false;
    let mut engine = Engine::default();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--scheme" => {
                i += 1;
                let name = rest.get(i).ok_or("--scheme needs a value")?;
                opts.scheme = match name.to_ascii_uppercase().as_str() {
                    "NI" => Scheme::Ni,
                    "CS" => Scheme::Cs,
                    "LNI" => Scheme::Lni,
                    "SE" => Scheme::Se,
                    "LI" => Scheme::Li,
                    "LLS" => Scheme::Lls,
                    "ALL" => Scheme::All,
                    "MCM" => Scheme::Mcm,
                    other => return Err(format!("unknown scheme `{other}`")),
                };
            }
            "--inx" => opts.kind = CheckKind::Inx,
            "--implications" => {
                i += 1;
                let mode = rest.get(i).ok_or("--implications needs a value")?;
                opts.implications = match mode.as_str() {
                    "all" => ImplicationMode::All,
                    "cross" => ImplicationMode::CrossFamilyOnly,
                    "none" => ImplicationMode::None,
                    other => return Err(format!("unknown implication mode `{other}`")),
                };
            }
            "--discharge" => {
                i += 1;
                let mode = rest.get(i).ok_or("--discharge needs a value")?;
                opts.discharge = match mode.as_str() {
                    "on" => Discharge::On,
                    "off" => Discharge::Off,
                    other => return Err(format!("unknown discharge mode `{other}`")),
                };
            }
            "--no-opt" => optimize = false,
            "--classic" => classic = true,
            "--certify" => certify = true,
            "--timings" => timings = true,
            "--engine" => {
                i += 1;
                let name = rest.get(i).ok_or("--engine needs a value")?;
                engine = name.parse::<Engine>()?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    Ok(Options {
        opts,
        optimize,
        classic,
        certify,
        timings,
        engine,
    })
}

/// Applies the classic pre-pass, snapshots the reference program, runs the
/// logged optimizer, and certifies the run. The reference is taken *after*
/// the classic pre-pass: the certifier validates the range-check
/// optimization, not the scalar optimizations.
fn optimize_and_certify(
    options: &Options,
    prog: &mut nascent::ir::Program,
) -> (OptimizeStats, Certificate, Timings) {
    if options.classic {
        for f in &mut prog.functions {
            nascent::classic::optimize_classic(f);
        }
    }
    let reference = prog.clone();
    let (stats, logs, timings) = if options.optimize {
        optimize_program_logged_timed(prog, &options.opts)
    } else {
        let logs = (0..prog.functions.len()).map(|_| JustLog::new()).collect();
        (OptimizeStats::default(), logs, Timings::default())
    };
    let cert = certify_program(&reference, prog, &logs, &options.opts);
    (stats, cert, timings)
}

/// Prints a certificate, diagnostics first; `Err` when it was rejected.
fn render_certificate(cert: &Certificate) -> Result<(), String> {
    for d in &cert.diagnostics {
        eprintln!("  {d}");
    }
    if cert.ok() {
        println!("{cert}");
        Ok(())
    } else {
        Err(cert.to_string())
    }
}

fn apply(options: &Options, prog: &mut nascent::ir::Program) {
    if options.classic {
        for f in &mut prog.functions {
            nascent::classic::optimize_classic(f);
        }
    }
    if options.optimize {
        optimize_program(prog, &options.opts);
    }
}

fn load(path: &str) -> Result<nascent::ir::Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    compile(&src).map_err(|e| format!("{path}: {e}"))
}

fn run_cli(args: &[String]) -> Result<(), String> {
    let (cmd, file, rest) =
        match args {
            [cmd, file, rest @ ..] => (cmd.as_str(), file.as_str(), rest),
            _ => return Err(
                "usage: nascentc <check|dump|run|stats|report|compare|verify> <file.mf> [options]"
                    .to_string(),
            ),
        };
    match cmd {
        "check" => {
            load(file)?;
            println!("{file}: ok");
            Ok(())
        }
        "dump" => {
            let options = parse_options(rest)?;
            let mut prog = load(file)?;
            apply(&options, &mut prog);
            print!("{}", DisplayProgram(&prog));
            Ok(())
        }
        "run" => {
            let options = parse_options(rest)?;
            let mut prog = load(file)?;
            apply(&options, &mut prog);
            let r = run_with_engine(&prog, &Limits::default(), options.engine)
                .map_err(|e| e.to_string())?;
            for v in &r.output {
                println!("{v}");
            }
            eprintln!(
                "instructions: {}   checks: {}   guard-ops: {}",
                r.dynamic_instructions, r.dynamic_checks, r.dynamic_guard_ops
            );
            if let Some(t) = &r.trap {
                eprintln!(
                    "TRAP in {} at instruction {}: {}",
                    t.function, t.at_instruction, t.check
                );
            }
            Ok(())
        }
        "stats" => {
            let options = parse_options(rest)?;
            let mut prog = load(file)?;
            let (stats, cert, timings) = optimize_and_certify(&options, &mut prog);
            println!("scheme:            {}", options.opts.scheme.name());
            println!(
                "static checks:     {} -> {}",
                stats.static_before, stats.static_after
            );
            println!("discharged:        {}", stats.discharged);
            println!("inserted (PRE):    {}", stats.inserted);
            println!("hoisted (preheader): {}", stats.hoisted);
            println!("strengthened:      {}", stats.strengthened);
            println!("eliminated:        {}", stats.eliminated_static);
            println!(
                "folded true/false: {}/{}",
                stats.folded_true, stats.folded_false
            );
            println!("families:          {}", stats.families);
            println!("CIG edges:         {}", stats.cig_edges);
            println!("dataflow iters:    {}", stats.dataflow_iterations);
            if options.timings {
                println!();
                print!("{}", timings.report());
            }
            if options.certify {
                render_certificate(&cert)?;
            }
            Ok(())
        }
        "trace" => {
            let (count, rest) = match rest {
                [n, more @ ..] if n.parse::<usize>().is_ok() => (n.parse::<usize>().unwrap(), more),
                _ => (50, rest),
            };
            let options = parse_options(rest)?;
            let mut prog = load(file)?;
            apply(&options, &mut prog);
            let (r, trace) = nascent::interp::run_traced(&prog, &Limits::default(), count);
            for e in &trace {
                println!("{}:{}[{}]  {}", e.function, e.block, e.stmt, e.rendered);
            }
            let r = r.map_err(|e| e.to_string())?;
            if let Some(t) = &r.trap {
                eprintln!("TRAP in {}: {}", t.function, t.check);
            }
            Ok(())
        }
        "report" => {
            let options = parse_options(rest)?;
            let before = load(file)?;
            let mut after = load(file)?;
            let (_, cert, _) = optimize_and_certify(&options, &mut after);
            print!("{}", nascent::rangecheck::report::report(&before, &after));
            if options.certify {
                render_certificate(&cert)?;
            }
            Ok(())
        }
        "verify" => {
            let options = parse_options(rest)?;
            let mut prog = load(file)?;
            let (_, cert, _) = optimize_and_certify(&options, &mut prog);
            println!(
                "scheme {} / {:?} / {:?} implications",
                options.opts.scheme.name(),
                options.opts.kind,
                options.opts.implications
            );
            render_certificate(&cert)
        }
        "compare" => {
            let options = parse_options(rest)?;
            let naive_prog = load(file)?;
            let naive = run_with_engine(&naive_prog, &Limits::default(), options.engine)
                .map_err(|e| e.to_string())?;
            println!(
                "naive: {} dynamic checks / {} instructions",
                naive.dynamic_checks, naive.dynamic_instructions
            );
            println!("{:<6} {:>12} {:>10}", "scheme", "dyn checks", "% removed");
            for scheme in Scheme::EACH.into_iter().chain([Scheme::Mcm]) {
                let mut prog = load(file)?;
                optimize_program(&mut prog, &OptimizeOptions::scheme(scheme));
                let r = run_with_engine(&prog, &Limits::default(), options.engine)
                    .map_err(|e| e.to_string())?;
                let pct =
                    100.0 * (1.0 - r.dynamic_checks as f64 / naive.dynamic_checks.max(1) as f64);
                println!(
                    "{:<6} {:>12} {:>9.1}%",
                    scheme.name(),
                    r.dynamic_checks,
                    pct
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
