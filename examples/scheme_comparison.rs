//! Compares all seven placement schemes of the paper on one program with
//! a mix of hoistable, invariant, conditional and indirect subscripts —
//! a miniature of the paper's Table 2.
//!
//! Run with `cargo run --example scheme_comparison`.

use nascent::frontend::compile;
use nascent::interp::{run, Limits};
use nascent::rangecheck::{optimize_program, CheckKind, OptimizeOptions, Scheme};

const SRC: &str = r#"
program mix
 integer a(1:200), map(1:200)
 integer i, k, n, t
 real acc
 n = 200
 k = 50
 acc = 0.0
 do i = 1, n
  map(i) = mod(i * 13, n) + 1
 enddo
 do t = 1, 5
  do i = 1, n
   a(i) = i + t            ! linear: hoistable by LLS
   a(k) = a(k) + 1         ! invariant: hoistable by LI
   if (mod(i, 8) == 0) then
    a(map(i)) = 0          ! indirect: never hoistable
   endif
  enddo
 enddo
 print a(k) + a(1) + a(n)
end
"#;

fn main() {
    let naive_prog = compile(SRC).expect("valid");
    let naive = run(&naive_prog, &Limits::default()).expect("runs");
    println!(
        "naive: {} dynamic checks / {} instructions\n",
        naive.dynamic_checks, naive.dynamic_instructions
    );
    println!("{:<8} {:>12} {:>12}", "scheme", "dyn checks", "% removed");
    for scheme in Scheme::EACH {
        let mut prog = compile(SRC).expect("valid");
        optimize_program(
            &mut prog,
            &OptimizeOptions::scheme(scheme).with_kind(CheckKind::Prx),
        );
        let r = run(&prog, &Limits::default()).expect("optimized runs");
        assert_eq!(r.output, naive.output, "{scheme:?} changed behavior");
        let pct = 100.0 * (1.0 - r.dynamic_checks as f64 / naive.dynamic_checks as f64);
        println!(
            "{:<8} {:>12} {:>11.1}%",
            scheme.name(),
            r.dynamic_checks,
            pct
        );
    }
    println!("\nLLS/ALL should dominate, exactly as in the paper's Table 2.");
}
