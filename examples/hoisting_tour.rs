//! A tour of preheader insertion (§3.3): invariant checks, loop-limit
//! substitution, nested re-hoisting, guards on possibly-zero-trip loops,
//! and the cases that must *not* hoist.
//!
//! Run with `cargo run --example hoisting_tour`.

use nascent::frontend::compile;
use nascent::interp::{run, Limits};
use nascent::ir::pretty::DisplayProgram;
use nascent::rangecheck::{optimize_program, OptimizeOptions, Scheme};

fn show(title: &str, src: &str) {
    println!("\n================ {title} ================");
    let naive_prog = compile(src).expect("valid");
    let naive = run(&naive_prog, &Limits::default()).expect("runs");
    let mut prog = compile(src).expect("valid");
    let stats = optimize_program(&mut prog, &OptimizeOptions::scheme(Scheme::Lls));
    let opt = run(&prog, &Limits::default()).expect("optimized runs");
    assert_eq!(opt.output, naive.output);
    assert_eq!(opt.trap.is_some(), naive.trap.is_some());
    println!(
        "dynamic checks: {} -> {}   (hoisted {}, guards evaluated {})",
        naive.dynamic_checks, opt.dynamic_checks, stats.hoisted, opt.dynamic_guard_ops
    );
    println!("{}", DisplayProgram(&prog));
}

fn main() {
    show(
        "nested loops: checks hoist to the outermost preheader",
        r#"
program nest
 integer g(1:40, 1:40)
 integer i, j, n
 n = 40
 do i = 1, n
  do j = 1, n
   g(i, j) = i * j
  enddo
 enddo
 print g(n, n)
end
"#,
    );

    show(
        "possibly-zero-trip loop: the Cond-check guard protects the hoist",
        r#"
program guard
 integer a(1:10)
 integer i, n, k
 n = 0
 k = 77
 do i = 1, n
  a(k) = i
 enddo
 print 42
end
"#,
    );

    show(
        "downward loop: substitution uses the lower limit for the upper bound",
        r#"
program down
 integer a(1:30)
 integer i
 do i = 30, 1, -1
  a(i) = i
 enddo
 print a(15)
end
"#,
    );

    show(
        "conditional access: not anticipatable, must stay in the loop",
        r#"
program cond
 integer a(1:10)
 integer i, k
 k = 50
 do i = 1, 10
  if (i > 100) then
   a(k) = 0
  endif
 enddo
 print a(1)
end
"#,
    );
}
