//! The instrumented C back end — the paper's measurement methodology:
//! translate the program to counter-instrumented C, compile, run, and
//! compare the counters against the in-process interpreter.
//!
//! Run with `cargo run --example c_backend`.

use nascent::cback::{cc_available, emit_c, run_via_c};
use nascent::frontend::compile;
use nascent::interp::{run, Limits};
use nascent::rangecheck::{optimize_program, OptimizeOptions, Scheme};

const SRC: &str = r#"
program cdemo
 integer a(1:50)
 integer i, s
 s = 0
 do i = 1, 50
  a(i) = i * 3
 enddo
 do i = 1, 50
  s = s + a(i)
 enddo
 print s
end
"#;

fn main() {
    let mut prog = compile(SRC).expect("valid MiniF");
    optimize_program(&mut prog, &OptimizeOptions::scheme(Scheme::Lls));

    println!("generated C (first 40 lines):");
    for line in emit_c(&prog).lines().take(40) {
        println!("  {line}");
    }

    let interp = run(&prog, &Limits::default()).expect("interpreter runs");
    println!(
        "\ninterpreter: {} instructions, {} checks, {} guard ops",
        interp.dynamic_instructions, interp.dynamic_checks, interp.dynamic_guard_ops
    );

    if !cc_available() {
        println!("no C compiler on this host; skipping the native run");
        return;
    }
    let c = run_via_c(&prog, "example").expect("C backend runs");
    println!(
        "C backend:   {} instructions, {} checks, {} guard ops",
        c.dynamic_instructions, c.dynamic_checks, c.dynamic_guard_ops
    );
    assert_eq!(interp.dynamic_instructions, c.dynamic_instructions);
    assert_eq!(interp.dynamic_checks, c.dynamic_checks);
    assert_eq!(interp.dynamic_guard_ops, c.dynamic_guard_ops);
    println!("\nboth measurement harnesses agree exactly.");
}
