//! Walks through the SSA-based induction-variable analysis of §2.3
//! (the paper's Figure 2): basic loop variables, derived linear
//! sequences, polynomials and invariants — and how the INX rewrite uses
//! them to unify check families.
//!
//! Run with `cargo run --example induction_analysis`.

use nascent::analysis::dom::Dominators;
use nascent::analysis::induction::classify_function;
use nascent::analysis::loops::LoopForest;
use nascent::analysis::ssa::Ssa;
use nascent::frontend::compile;
use nascent::ir::pretty::checks_to_strings;
use nascent::rangecheck::inx::rewrite_checks;

const SRC: &str = r#"
program induction
 integer a(1:100), b(1:100)
 integer i, j, k, m, n, t
 n = 20
 j = 0
 k = 3
 m = 5
 t = 0
 do i = 0, n - 1
  j = j + 1
  k = k + m
  t = t + j
  a(k) = 2 * m + 1
  b(j) = t
 enddo
 print a(k) + b(j)
end
"#;

fn main() {
    let prog = compile(SRC).expect("valid");
    let f = &prog.functions[0];
    let dom = Dominators::compute(f);
    let ssa = Ssa::compute(f, &dom);
    let forest = LoopForest::compute(f);

    println!("induction classification at the loop header:");
    let classes = classify_function(f, &ssa, &forest);
    let mut rows: Vec<(String, String)> = classes
        .iter()
        .filter_map(|((_, var), class)| {
            let name = &f.vars[var.index()].name;
            (!name.starts_with('%')).then(|| (name.clone(), format!("{class:?}")))
        })
        .collect();
    rows.sort();
    for (name, class) in rows {
        println!("  {name:4} -> {class}");
    }

    println!("\nchecks before the INX rewrite:");
    let mut prog2 = compile(SRC).expect("valid");
    for (b, c) in checks_to_strings(&prog2.functions[0]) {
        println!("  {b}: {c}");
    }
    let n = rewrite_checks(&mut prog2.functions[0]);
    println!("\nchecks after the INX rewrite ({n} substitutions):");
    for (b, c) in checks_to_strings(&prog2.functions[0]) {
        println!("  {b}: {c}");
    }
    println!("\nderived sequences (j = h+1, k = 5h+8) now share families with");
    println!("their defining expressions, exactly the effect of INX-checks.");
}
