//! Quickstart: compile a MiniF program, optimize its range checks with
//! loop-limit substitution, and compare dynamic check counts.
//!
//! Run with `cargo run --example quickstart`.

use nascent::frontend::compile;
use nascent::interp::{run, Limits};
use nascent::ir::pretty::DisplayProgram;
use nascent::rangecheck::{optimize_program, OptimizeOptions, Scheme};

fn main() {
    let src = r#"
program quickstart
 integer a(1:1000)
 integer i, n
 n = 1000
 do i = 1, n
  a(i) = 2 * i
 enddo
 print a(n)
end
"#;

    // 1. compile with naive range checks (2 per array access)
    let mut prog = compile(src).expect("valid MiniF");
    let naive = run(&prog, &Limits::default()).expect("runs");
    println!("naive:     {} dynamic checks", naive.dynamic_checks);

    // 2. optimize with the paper's winning scheme (LLS)
    let stats = optimize_program(&mut prog, &OptimizeOptions::scheme(Scheme::Lls));
    println!(
        "optimizer: hoisted {} checks into the preheader, {} static checks remain",
        stats.hoisted, stats.static_after
    );

    // 3. run again — the loop body is check-free
    let opt = run(&prog, &Limits::default()).expect("still runs");
    println!("optimized: {} dynamic checks", opt.dynamic_checks);
    assert_eq!(naive.output, opt.output);
    // two hoisted conditional checks for the loop + the checks guarding
    // the final `print a(n)` access
    assert!(opt.dynamic_checks <= 6);

    println!("\noptimized program:\n{}", DisplayProgram(&prog));
}
