//! The safety oracle (§3's optimization-preservation criterion) on random
//! programs: for every generated program and every optimizer
//! configuration,
//!
//! 1. a violation is detected in the optimized program iff it is detected
//!    in the unoptimized program, and
//! 2. the optimized program detects it no later.
//!
//! Run with `cargo run --example safety_oracle [-- <count>]`.

use nascent::frontend::compile;
use nascent::interp::{run, Limits, RunError};
use nascent::rangecheck::{optimize_program, CheckKind, OptimizeOptions, Scheme};
use nascent::suite::{random_program, GenConfig};

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150);
    let cfg = GenConfig::default();
    let limits = Limits {
        max_steps: 300_000,
        max_call_depth: 16,
    };
    let mut checked = 0u64;
    let mut trapping = 0u64;
    for seed in 0..count {
        let src = random_program(seed, &cfg);
        let prog = compile(&src).expect("generated programs compile");
        let naive = match run(&prog, &limits) {
            Ok(r) => r,
            Err(RunError::StepLimit | RunError::DivisionByZero { .. }) => continue,
            Err(e) => panic!("seed {seed}: {e}"),
        };
        if naive.trap.is_some() {
            trapping += 1;
        }
        for scheme in Scheme::EACH {
            for kind in [CheckKind::Prx, CheckKind::Inx] {
                let mut p = compile(&src).expect("compiles");
                optimize_program(&mut p, &OptimizeOptions::scheme(scheme).with_kind(kind));
                let opt = match run(&p, &limits) {
                    Ok(r) => r,
                    Err(RunError::StepLimit | RunError::DivisionByZero { .. }) => continue,
                    Err(e) => panic!("seed {seed} {scheme:?}/{kind:?}: UNSOUND: {e}"),
                };
                match (&naive.trap, &opt.trap) {
                    (Some(nt), Some(ot)) => assert!(
                        ot.at_progress <= nt.at_progress,
                        "seed {seed} {scheme:?}: trap DELAYED"
                    ),
                    (Some(_), None) => panic!("seed {seed} {scheme:?}: trap LOST"),
                    (None, Some(ot)) => {
                        panic!("seed {seed} {scheme:?}: trap INTRODUCED {ot:?}")
                    }
                    (None, None) => assert_eq!(
                        naive.output, opt.output,
                        "seed {seed} {scheme:?}: output changed"
                    ),
                }
                checked += 1;
            }
        }
    }
    println!(
        "oracle passed: {checked} (program, scheme, kind) combinations, {trapping} trapping seeds"
    );
}
