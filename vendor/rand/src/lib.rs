//! Minimal, dependency-free subset of the `rand` 0.8 API.
//!
//! The workspace is built in environments without registry access, so the
//! handful of `rand` entry points the suite generator uses are provided
//! here: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! half-open and inclusive integer ranges, and `Rng::gen_bool`. The
//! generator is SplitMix64 seeded into xoshiro256**, which is more than
//! adequate for deterministic test-program generation (it is *not* a
//! cryptographic RNG, and neither is the real `StdRng` contractually).

use std::ops::{Range, RangeInclusive};

/// Core RNG trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from a range by an RNG.
///
/// Stands in for `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integer types with a uniform sampler.
///
/// Stands in for `rand::distributions::uniform::SampleUniform`; the
/// blanket [`SampleRange`] impls below tie the range's element type to
/// the result type, which is what lets integer-literal inference work
/// the way it does with the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = uniform_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform draw in `[0, span)` via rejection sampling on 64-bit words.
fn uniform_below<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // Rejection zone keeps the draw exactly uniform.
        let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    } else {
        // Spans wider than 64 bits (e.g. full i64 inclusive range): draw
        // 128 bits; the modulo bias over at most 2^65 values is negligible
        // and irrelevant for test-program generation.
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        ((hi << 64) | lo) % span
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 random mantissa bits give a uniform float in [0, 1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<T: RngCore> Rng for T {}

/// The standard deterministic RNG: xoshiro256** seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// `rand::rngs` module shim.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-30i64..=30);
            assert!((-30..=30).contains(&v));
            let u: usize = r.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
