//! Minimal, dependency-free subset of the `criterion` 0.5 API.
//!
//! The workspace builds in environments without registry access, so the
//! bench entry points used by `crates/bench/benches/` are provided here:
//! `Criterion`, benchmark groups, `BenchmarkId`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple best-of-N wall-clock timer printed to stdout — adequate for
//! relative ordering, with none of criterion's statistics.

use std::time::{Duration, Instant};

/// Number of timed batches per benchmark.
const BATCHES: u32 = 5;
/// Target wall-clock time per batch.
const BATCH_TARGET: Duration = Duration::from_millis(40);

/// Identifier combining a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("scheme", "LLS")` → `scheme/LLS`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the best observed time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a batch size that fills BATCH_TARGET.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_batch = (BATCH_TARGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let mut best = f64::INFINITY;
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / per_batch as f64;
            best = best.min(ns);
        }
        self.best_ns_per_iter = best;
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        best_ns_per_iter: f64::NAN,
    };
    f(&mut b);
    let ns = b.best_ns_per_iter;
    let pretty = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!("{label:<40} time: {pretty}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain string label.
    pub fn bench_function<F>(&mut self, label: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, label);
        run_one(&full, f);
        self
    }

    /// Ends the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Benchmarks `f` under `label`.
    pub fn bench_function<F>(&mut self, label: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(label, f);
        self
    }
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
