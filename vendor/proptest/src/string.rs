//! Generation from the regex subset used as string strategies.
//!
//! Supported syntax: literal characters, escapes (`\n`, `\t`, `\\`,
//! `\-`, …), the printable-character class `\PC`, character classes
//! `[...]` with ranges and escapes, and the quantifiers `*`, `+`, `?`
//! and `{m,n}` / `{n}`.

use rand::Rng;

use crate::test_runner::TestRng;

/// Maximum repetitions for unbounded quantifiers (`*`, `+`).
const STAR_MAX: usize = 24;

#[derive(Debug, Clone)]
enum Atom {
    /// `\PC`: any printable character.
    Printable,
    /// `[...]`: inclusive character ranges (single chars are `(c, c)`).
    Class(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let n = rng.inner.gen_range(p.min..=p.max);
        for _ in 0..n {
            out.push(sample_atom(&p.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Printable => {
            // Mostly ASCII printable, occasionally multibyte, to exercise
            // lexers beyond the ASCII fast path.
            if rng.inner.gen_range(0u32..16) == 0 {
                const EXOTIC: [char; 6] = ['é', 'λ', '∀', '→', '日', '…'];
                EXOTIC[rng.inner.gen_range(0..EXOTIC.len())]
            } else {
                char::from(rng.inner.gen_range(0x20u32..0x7F) as u8)
            }
        }
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.inner.gen_range(0..ranges.len())];
            let v = rng.inner.gen_range(lo as u32..=hi as u32);
            char::from_u32(v).unwrap_or(lo)
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                i += 1;
                if i + 1 < chars.len() && chars[i] == 'P' && chars[i + 1] == 'C' {
                    i += 2;
                    Atom::Printable
                } else {
                    let c = unescape(chars[i]);
                    i += 1;
                    Atom::Lit(c)
                }
            }
            '[' => {
                i += 1;
                let mut members: Vec<char> = Vec::new();
                let mut ranges: Vec<(char, char)> = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    i += 1;
                    // `a-z` range: an unescaped `-` with something after it.
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        ranges.push((c, hi));
                    } else {
                        members.push(c);
                    }
                }
                i += 1; // closing ']'
                ranges.extend(members.into_iter().map(|c| (c, c)));
                assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(ranges)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '*' => {
                    i += 1;
                    (0, STAR_MAX)
                }
                '+' => {
                    i += 1;
                    (1, STAR_MAX)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '{' => {
                    i += 1;
                    let mut num = String::new();
                    while chars[i].is_ascii_digit() {
                        num.push(chars[i]);
                        i += 1;
                    }
                    let m: usize = num.parse().expect("quantifier lower bound");
                    let n = if chars[i] == ',' {
                        i += 1;
                        let mut num2 = String::new();
                        while chars[i].is_ascii_digit() {
                            num2.push(chars[i]);
                            i += 1;
                        }
                        num2.parse().expect("quantifier upper bound")
                    } else {
                        m
                    };
                    assert_eq!(chars[i], '}', "unterminated quantifier in {pattern:?}");
                    i += 1;
                    (m, n)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printable_star() {
        let mut rng = TestRng::for_test("printable_star");
        for _ in 0..50 {
            let s = generate("\\PC*", &mut rng);
            assert!(s.chars().count() <= STAR_MAX);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn class_with_escapes_and_bounds() {
        let mut rng = TestRng::for_test("class");
        for _ in 0..50 {
            let s = generate("[a-z0-9 =+\\-*/(),:<>\n]{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || " =+-*/(),:<>\n".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn exact_repetition() {
        let mut rng = TestRng::for_test("exact");
        assert_eq!(generate("ab{3}c", &mut rng), "abbbc");
    }
}
