//! Minimal, dependency-free subset of the `proptest` 1.x API.
//!
//! The workspace builds in environments without registry access, so the
//! surface actually used by the test suite is reimplemented here:
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros, the `Strategy` trait with `prop_map` / `prop_recursive` /
//! `boxed`, integer-range and regex-literal string strategies, tuple
//! strategies, and `prop::collection::vec`.
//!
//! Differences from real proptest: generation is purely random (seeded
//! deterministically per test), there is no shrinking, and string
//! "regexes" support only the subset of syntax the suite uses (character
//! classes, `\PC`, and `*` / `{m,n}` quantifiers).

pub mod strategy;
pub mod string;
pub mod test_runner;

/// `prop::collection` shim: vector strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with length drawn from a
    /// [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a vector strategy (`prop::collection::vec(elem, len)`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn prop_generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.inner.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.prop_generate(rng)).collect()
        }
    }
}

/// Prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Entry point macro: defines `#[test]` functions that run a body over
/// many generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::prop_generate(&($strat), &mut __rng);
                )+
                let __result = $crate::test_runner::run_case(|| {
                    $body
                    ::core::result::Result::Ok(())
                });
                if let ::core::result::Result::Err(__e) = __result {
                    panic!("proptest case #{} failed: {}", __case, __e);
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Assertion that fails the current generated case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion that fails the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __l = &$a;
        let __r = &$b;
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __l, __r),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __l = &$a;
        let __r = &$b;
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), __l, __r),
            ));
        }
    }};
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($s:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
