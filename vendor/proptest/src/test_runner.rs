//! Test-runner plumbing: configuration, RNG, and case errors.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Failure of a single generated case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// Underlying generator (shim `StdRng`).
    pub inner: StdRng,
}

impl TestRng {
    /// Seeds the RNG from the test function's name so each test gets a
    /// distinct but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

/// Runs one case body; exists so the `proptest!` expansion avoids an
/// immediately-invoked closure (and the lint that comes with it).
pub fn run_case<F: FnOnce() -> Result<(), TestCaseError>>(body: F) -> Result<(), TestCaseError> {
    body()
}
