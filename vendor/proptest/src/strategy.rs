//! The `Strategy` trait and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::Rng;

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking — a
/// strategy is just a seeded random generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn prop_generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `self` generates leaves and `f`
    /// wraps an inner strategy into one more level of structure.
    ///
    /// `depth` bounds the recursion; `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility but
    /// unused (no value trees here).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let rec = f(level).boxed();
            level = Recurse {
                leaf: leaf.clone(),
                rec,
            }
            .boxed();
        }
        level
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn prop_generate(&self, rng: &mut TestRng) -> T {
        self.0.prop_generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn prop_generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.prop_generate(rng))
    }
}

/// One level of [`Strategy::prop_recursive`]: sometimes a leaf,
/// usually one more level of structure.
struct Recurse<T> {
    leaf: BoxedStrategy<T>,
    rec: BoxedStrategy<T>,
}

impl<T> Strategy for Recurse<T> {
    type Value = T;

    fn prop_generate(&self, rng: &mut TestRng) -> T {
        if rng.inner.gen_range(0u32..4) == 0 {
            self.leaf.prop_generate(rng)
        } else {
            self.rec.prop_generate(rng)
        }
    }
}

/// Uniform choice among alternatives (`prop_oneof!`).
pub struct Union<T> {
    alts: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty alternative list.
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
        Union { alts }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            alts: self.alts.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn prop_generate(&self, rng: &mut TestRng) -> T {
        let i = rng.inner.gen_range(0..self.alts.len());
        self.alts[i].prop_generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn prop_generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn prop_generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// String literals act as regex-subset strategies generating `String`.
impl Strategy for &'static str {
    type Value = String;

    fn prop_generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn prop_generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.prop_generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
}
